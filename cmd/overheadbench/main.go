// Command overheadbench regenerates the paper's overhead experiments (§5):
//
//	overheadbench -fig 6    # run-time read-barrier overhead per benchmark,
//	                        # two barrier shapes (the paper's two platforms)
//	overheadbench -fig 7    # normalized GC time vs. heap size for the
//	                        # Base / Observe / Select configurations
//	overheadbench -compile  # compile-time and code-size cost of inserting
//	                        # read barriers (the jitsim experiment)
//	overheadbench -elision  # tier-1 barrier elision: sites removed,
//	                        # compile-time delta, modelled mutator recovery
//	                        # (writes BENCH_jit_elision.json)
//
// The -compile and -elision modes emit machine-readable JSON (-json / -o)
// with the pre-change baseline embedded, so both the barrier tax and the
// tier-1 recovery stay tracked numbers.
//
// The non-leaking benchmark suite stands in for DaCapo/pseudojbb/SPECjvm98;
// absolute times differ from the paper's hardware, but the measured
// quantities are the same relative overheads.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"text/tabwriter"
	"time"

	"leakpruning/internal/harness"
	"leakpruning/internal/jitsim"
	"leakpruning/internal/stats"
	"leakpruning/internal/workload"
)

func main() {
	var (
		fig     = flag.Int("fig", 0, "regenerate figure 6 or 7")
		compile = flag.Bool("compile", false, "measure compilation overhead of barrier insertion")
		elision = flag.Bool("elision", false, "measure tier-1 barrier elision and write the JSON artifact")
		iters   = flag.Int("iters", 600, "iterations per benchmark run")
		trials  = flag.Int("trials", 5, "trials per configuration (median reported)")
		methods = flag.Int("methods", 40, "corpus methods per benchmark (-elision)")
		opsPer  = flag.Int("ops", 300, "ops per corpus method (-elision)")
		reps    = flag.Int("reps", 2, "executions per method per replay iteration (-elision)")
		jsonOut = flag.String("json", "", "write the -compile report as JSON to this path ('-' for stdout)")
		out     = flag.String("o", "BENCH_jit_elision.json", "output path for -elision ('-' for stdout)")
	)
	flag.Parse()

	switch {
	case *fig == 6:
		figure6(*iters, *trials)
	case *fig == 7:
		figure7(*iters, *trials)
	case *compile:
		compileOverhead(*trials, *jsonOut)
	case *elision:
		elisionReport(*methods, *opsPer, *reps, *out)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// writeJSON marshals v to path ('-' = stdout).
func writeJSON(v any, path string) {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		panic(err)
	}
	data = append(data, '\n')
	if path == "-" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "overheadbench: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "overheadbench: wrote %s\n", path)
}

// runtimeOf runs one benchmark configuration and returns total mutator +
// collector time.
func runtimeOf(name string, iters int, cfg harness.Config) time.Duration {
	cfg.Program = name
	cfg.Policy = "off"
	cfg.MaxIters = iters
	res, err := harness.Run(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if !res.Capped() {
		fmt.Fprintf(os.Stderr, "overheadbench: %s died unexpectedly: %s (%v)\n", name, res.Reason, res.Err)
		os.Exit(1)
	}
	return res.Duration
}

// bestRuntime takes the minimum over trials: the least-perturbed
// observation of a deterministic workload.
func bestRuntime(name string, iters, trials int, cfg harness.Config) float64 {
	var xs []float64
	for i := 0; i < trials; i++ {
		xs = append(xs, float64(runtimeOf(name, iters, cfg)))
	}
	return stats.Min(xs)
}

// figure6 measures the run-time overhead of read barriers: each benchmark
// runs with barriers compiled out (baseline) and with barriers in while the
// controller is forced into the SELECT state continuously, exactly the
// paper's methodology ("even though these benchmarks do not leak memory, we
// force leak pruning to be in the SELECT state continuously").
func figure6(iters, trials int) {
	fmt.Println("Figure 6: run-time overhead of leak pruning (barriers + forced SELECT)")
	fmt.Println("(paper: 5% average on Pentium 4, 3% on Core 2; here the two 'platforms'")
	fmt.Println(" are the conditional and unconditional barrier implementations)")
	fmt.Println()
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Benchmark\tconditional %\tunconditional %")
	var cond, uncond []float64
	for _, name := range workload.MicroBenchNames() {
		base := bestRuntime(name, iters, trials, harness.Config{BarriersOff: true})
		c := bestRuntime(name, iters, trials, harness.Config{ForceState: "select", BarrierVariant: "conditional"})
		u := bestRuntime(name, iters, trials, harness.Config{ForceState: "select", BarrierVariant: "unconditional"})
		co := stats.Overhead(c, base)
		uo := stats.Overhead(u, base)
		cond = append(cond, c/base)
		uncond = append(uncond, u/base)
		fmt.Fprintf(w, "%s\t%.1f\t%.1f\n", name, co, uo)
	}
	fmt.Fprintf(w, "geomean\t%.1f\t%.1f\n",
		(stats.GeoMean(cond)-1)*100, (stats.GeoMean(uncond)-1)*100)
	w.Flush()
}

// figure7 measures normalized GC time across heap sizes 1.5x–5x each
// benchmark's minimum for the Base, Observe, and Select configurations.
func figure7(iters, trials int) {
	multipliers := []float64{1.5, 2, 3, 4, 5}
	fmt.Println("Figure 7: geometric mean of normalized GC time across heap sizes")
	fmt.Println("(paper: Observe adds up to 5%, Select up to 9% more, total up to 14%)")
	fmt.Println()
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Heap multiplier\tBase\tObserve\tSelect")

	gcTime := func(name string, heap uint64, force string) float64 {
		var xs []float64
		for i := 0; i < trials; i++ {
			cfg := harness.Config{Program: name, Policy: "off", MaxIters: iters, HeapLimit: heap, ForceState: force}
			res, err := harness.Run(cfg)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			xs = append(xs, float64(res.VMStats.GCTime))
		}
		return stats.Min(xs)
	}

	for _, mult := range multipliers {
		var obsRatios, selRatios []float64
		for _, name := range workload.MicroBenchNames() {
			prog, err := workload.New(name)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			sizer, ok := prog.(workload.Sizer)
			if !ok {
				continue
			}
			heap := uint64(float64(sizer.MinHeap()) * mult)
			base := gcTime(name, heap, "")
			obs := gcTime(name, heap, "observe")
			sel := gcTime(name, heap, "select")
			if base > 0 {
				obsRatios = append(obsRatios, obs/base)
				selRatios = append(selRatios, sel/base)
			}
		}
		fmt.Fprintf(w, "%.1fx\t1.000\t%.3f\t%.3f\n",
			mult, stats.GeoMean(obsRatios), stats.GeoMean(selRatios))
	}
	w.Flush()
}

// baselinePreElision pins the numbers this PR starts from, measured at the
// seed commit with the tier-0 always-barrier compile (overheadbench
// -compile, 5 trials): compile-time geomean +19.6%, code size +10.2%. The
// paper reports +17% / +10% on its hardware (§5). Elision is judged against
// these, not against whatever the tree produces after further changes.
type baselinePreElision struct {
	CompileTimeOverheadPct float64 `json:"compile_time_overhead_pct"`
	CodeSizeOverheadPct    float64 `json:"code_size_overhead_pct"`
	PaperCompileTimePct    float64 `json:"paper_compile_time_pct"`
	PaperCodeSizePct       float64 `json:"paper_code_size_pct"`
	Note                   string  `json:"note"`
}

func preElisionBaseline() baselinePreElision {
	return baselinePreElision{
		CompileTimeOverheadPct: 19.6,
		CodeSizeOverheadPct:    10.2,
		PaperCompileTimePct:    17,
		PaperCodeSizePct:       10,
		Note:                   "tier-0 always-barrier compile measured at this PR's seed; paper values from §5",
	}
}

// mutatorModel carries the measured per-load costs the elision report uses
// to model mutator recovery. The two numbers come from BENCH_mutator_ops.json
// (op=load, world=safepoint, obs=false, threads=1).
type mutatorModel struct {
	LoadBarriersOffNs float64 `json:"load_barriers_off_ns"`
	LoadBarriersOnNs  float64 `json:"load_barriers_on_ns"`
	Source            string  `json:"source"`
}

func measuredMutatorModel() mutatorModel {
	return mutatorModel{
		LoadBarriersOffNs: 30.42659902572632,
		LoadBarriersOnNs:  31.112364768981934,
		Source:            "BENCH_mutator_ops.json op=load world=safepoint obs=false threads=1",
	}
}

type compileRow struct {
	Benchmark        string  `json:"benchmark"`
	CompileTimePct   float64 `json:"compile_time_pct"`
	CodeSizePct      float64 `json:"code_size_pct"`
	BarrierSites     int     `json:"barrier_sites"`
	ScheduleCostIncr int     `json:"schedule_cost_increase"`
}

type compileReport struct {
	Baseline          baselinePreElision `json:"baseline_pre_elision"`
	Benchmarks        []compileRow       `json:"benchmarks"`
	GeomeanTimePct    float64            `json:"geomean_compile_time_pct"`
	GeomeanSizePct    float64            `json:"geomean_code_size_pct"`
	TrialsPerConfig   int                `json:"trials_per_config"`
	CorpusMethods     int                `json:"corpus_methods"`
	CorpusOpsPerMeth  int                `json:"corpus_ops_per_method"`
	MeasurementPolicy string             `json:"measurement_policy"`
}

// compileOverhead reproduces §5's compilation measurements: inserting read
// barriers bloats the IR, adding to compile time (paper: +17% average, +34%
// max) and code size (+10% average, +15% max). With -json it also emits a
// machine-readable report carrying the pre-change baseline.
func compileOverhead(trials int, jsonOut string) {
	fmt.Println("Compilation overhead of read-barrier insertion (jitsim)")
	fmt.Println("(paper: +17% compile time on average, at most +34%; +10% code size, at most +15%)")
	fmt.Println()
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Benchmark\tcompile time %\tcode size %\tbarrier sites")
	rep := compileReport{
		Baseline:          preElisionBaseline(),
		TrialsPerConfig:   trials,
		CorpusMethods:     400,
		CorpusOpsPerMeth:  400,
		MeasurementPolicy: "min over trials per configuration",
	}
	var timeRatios, sizeRatios []float64
	for _, name := range workload.MicroBenchNames() {
		corpus := jitsim.Corpus(name, 400, 400)
		var tn, tb []float64
		var plain, barrier jitsim.SuiteStats
		for i := 0; i < trials; i++ {
			plain = jitsim.CompileCorpus(name, &jitsim.Compiler{}, corpus)
			barrier = jitsim.CompileCorpus(name, &jitsim.Compiler{InsertReadBarriers: true}, corpus)
			tn = append(tn, float64(plain.CompileTime))
			tb = append(tb, float64(barrier.CompileTime))
		}
		timeOv := stats.Overhead(stats.Min(tb), stats.Min(tn))
		sizeOv := stats.Overhead(float64(barrier.CodeBytes), float64(plain.CodeBytes))
		timeRatios = append(timeRatios, stats.Min(tb)/stats.Min(tn))
		sizeRatios = append(sizeRatios, float64(barrier.CodeBytes)/float64(plain.CodeBytes))
		rep.Benchmarks = append(rep.Benchmarks, compileRow{
			Benchmark:        name,
			CompileTimePct:   timeOv,
			CodeSizePct:      sizeOv,
			BarrierSites:     barrier.BarrierSites,
			ScheduleCostIncr: barrier.ScheduleCost - plain.ScheduleCost,
		})
		fmt.Fprintf(w, "%s\t%.1f\t%.1f\t%d\n", name, timeOv, sizeOv, barrier.BarrierSites)
	}
	rep.GeomeanTimePct = (stats.GeoMean(timeRatios) - 1) * 100
	rep.GeomeanSizePct = (stats.GeoMean(sizeRatios) - 1) * 100
	fmt.Fprintf(w, "geomean\t%.1f\t%.1f\t\n", rep.GeomeanTimePct, rep.GeomeanSizePct)
	w.Flush()
	if jsonOut != "" {
		writeJSON(rep, jsonOut)
	}
}

type elisionMethodRow struct {
	Method  string `json:"method"`
	Sites   int    `json:"sites"`
	Emitted int    `json:"emitted"`
	Elided  int    `json:"elided"`
	Hoisted int    `json:"hoisted"`
}

type elisionBenchRow struct {
	Benchmark string `json:"benchmark"`

	// Static outcome of the tier-1 analysis over the corpus.
	Sites           int     `json:"sites"`
	Emitted         int     `json:"emitted"`
	Elided          int     `json:"elided"`
	Hoisted         int     `json:"hoisted"`
	ElisionRatio    float64 `json:"elision_ratio"`
	MethodsTotal    int     `json:"methods_total"`
	MethodsAt30Pct  int     `json:"methods_at_30pct_elision"`
	Tier0CodeBytes  int     `json:"tier0_code_bytes"`
	Tier1CodeBytes  int     `json:"tier1_code_bytes"`
	Tier0SchedCost  int     `json:"tier0_schedule_cost"`
	Tier1SchedCost  int     `json:"tier1_schedule_cost"`
	Tier0CompileNs  int64   `json:"tier0_compile_ns"`
	Tier1CompileNs  int64   `json:"tier1_compile_ns"`
	CompileDeltaPct float64 `json:"tier1_compile_delta_pct"`

	// Dynamic outcome from the tiered replay.
	Tier1Methods        int     `json:"tier1_methods_recompiled"`
	DynTestsTier0       int64   `json:"dyn_tests_tier0"`
	DynTestsTier1       int64   `json:"dyn_tests_tier1"`
	DynElisionRatio     float64 `json:"dyn_elision_ratio"`
	ModelledCyclesSaved int64   `json:"modelled_cycles_saved"`

	// Modelled mutator recovery: the barrier's per-load surcharge shrinks
	// by the dynamic elision ratio.
	ModelledLoadNsAfter       float64 `json:"modelled_load_ns_after_elision"`
	ModelledMutatorSpeedupPct float64 `json:"modelled_mutator_speedup_pct"`

	Methods []elisionMethodRow `json:"methods"`
}

type elisionReportJSON struct {
	Baseline       baselinePreElision `json:"baseline_pre_elision"`
	Mutator        mutatorModel       `json:"mutator_model"`
	CorpusMethods  int                `json:"corpus_methods"`
	CorpusOps      int                `json:"corpus_ops_per_method"`
	RepsPerIter    int                `json:"reps_per_iteration"`
	TestCostCycles int                `json:"test_cost_cycles"`
	Benchmarks     []elisionBenchRow  `json:"benchmarks"`

	GeomeanElisionRatio    float64 `json:"geomean_elision_ratio"`
	GeomeanCompileDeltaPct float64 `json:"geomean_tier1_compile_delta_pct"`
	GeomeanDynElisionRatio float64 `json:"geomean_dyn_elision_ratio"`
	GeomeanSpeedupPct      float64 `json:"geomean_modelled_mutator_speedup_pct"`
}

// elisionReport measures what tier 1 buys: per benchmark, the static
// fraction of barrier sites the analysis removed, the tier-1 compile-time
// surcharge over tier 0, the dynamic barrier-test reduction under the
// tiered replay, and the mutator time that reduction models out, anchored
// to the measured barrier-on/off load costs.
func elisionReport(methods, opsPer, reps int, out string) {
	mm := measuredMutatorModel()
	rep := elisionReportJSON{
		Baseline:       preElisionBaseline(),
		Mutator:        mm,
		CorpusMethods:  methods,
		CorpusOps:      opsPer,
		RepsPerIter:    reps,
		TestCostCycles: jitsim.TestCostCycles,
	}
	surcharge := mm.LoadBarriersOnNs - mm.LoadBarriersOffNs

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Println("Tier-1 barrier elision (jitsim)")
	fmt.Println()
	fmt.Fprintln(w, "Benchmark\tsites\telided\thoisted\tratio\t>=30% methods\tcompile +%\tdyn tests t0->t1\tmodelled load ns")
	var ratios, deltas, dynRatios, speedups []float64
	for _, name := range workload.MicroBenchNames() {
		corpus := jitsim.Corpus(name, methods, opsPer)
		row := elisionBenchRow{Benchmark: name, MethodsTotal: len(corpus)}
		c := &jitsim.Compiler{InsertReadBarriers: true}
		for _, m := range corpus {
			_, st0 := c.CompileTier(m, jitsim.Tier0)
			_, st1 := c.CompileTier(m, jitsim.Tier1)
			row.Sites += st0.BarrierSites
			row.Emitted += st1.BarrierSites
			row.Elided += st1.BarriersElided
			row.Hoisted += st1.BarriersHoisted
			row.Tier0CodeBytes += st0.CodeBytes
			row.Tier1CodeBytes += st1.CodeBytes
			row.Tier0SchedCost += st0.ScheduleCost
			row.Tier1SchedCost += st1.ScheduleCost
			row.Tier0CompileNs += int64(st0.Duration)
			row.Tier1CompileNs += int64(st1.Duration)
			if st0.BarrierSites > 0 &&
				float64(st1.BarriersElided+st1.BarriersHoisted)/float64(st0.BarrierSites) >= 0.30 {
				row.MethodsAt30Pct++
			}
			row.Methods = append(row.Methods, elisionMethodRow{
				Method:  m.Name,
				Sites:   st0.BarrierSites,
				Emitted: st1.BarrierSites,
				Elided:  st1.BarriersElided,
				Hoisted: st1.BarriersHoisted,
			})
		}
		if row.Sites > 0 {
			row.ElisionRatio = float64(row.Elided+row.Hoisted) / float64(row.Sites)
		}
		if row.Tier0CompileNs > 0 {
			row.CompileDeltaPct = (float64(row.Tier1CompileNs)/float64(row.Tier0CompileNs) - 1) * 100
		}

		rr := jitsim.Replay(&jitsim.Compiler{InsertReadBarriers: true, HotThreshold: reps}, corpus, reps)
		row.Tier1Methods = rr.Tier1Methods
		row.DynTestsTier0 = rr.DynTestsTier0
		row.DynTestsTier1 = rr.DynTestsTier1
		row.ModelledCyclesSaved = rr.ModelledCyclesSaved
		if rr.DynTestsTier0 > 0 {
			row.DynElisionRatio = 1 - float64(rr.DynTestsTier1)/float64(rr.DynTestsTier0)
		}
		// A load that kept its barrier pays the full surcharge; an elided
		// one pays none. Averaged over loads that is off + (1-rho)*(on-off).
		row.ModelledLoadNsAfter = mm.LoadBarriersOffNs + (1-row.DynElisionRatio)*surcharge
		row.ModelledMutatorSpeedupPct =
			(1 - row.ModelledLoadNsAfter/mm.LoadBarriersOnNs) * 100

		rep.Benchmarks = append(rep.Benchmarks, row)
		ratios = append(ratios, row.ElisionRatio)
		deltas = append(deltas, 1+row.CompileDeltaPct/100)
		dynRatios = append(dynRatios, row.DynElisionRatio)
		speedups = append(speedups, row.ModelledLoadNsAfter/mm.LoadBarriersOnNs)
		fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%.2f\t%d/%d\t%.1f\t%d->%d\t%.2f\n",
			name, row.Sites, row.Elided, row.Hoisted, row.ElisionRatio,
			row.MethodsAt30Pct, row.MethodsTotal, row.CompileDeltaPct,
			row.DynTestsTier0, row.DynTestsTier1, row.ModelledLoadNsAfter)
	}
	rep.GeomeanElisionRatio = stats.GeoMean(ratios)
	rep.GeomeanCompileDeltaPct = (stats.GeoMean(deltas) - 1) * 100
	rep.GeomeanDynElisionRatio = stats.GeoMean(dynRatios)
	rep.GeomeanSpeedupPct = (1 - stats.GeoMean(speedups)) * 100
	fmt.Fprintf(w, "geomean\t\t\t\t%.2f\t\t%.1f\t\t%.2f ns (%.1f%% of surcharge back)\n",
		rep.GeomeanElisionRatio, rep.GeomeanCompileDeltaPct,
		mm.LoadBarriersOffNs+(1-rep.GeomeanDynElisionRatio)*surcharge,
		rep.GeomeanDynElisionRatio*100)
	w.Flush()
	writeJSON(rep, out)
}
