// Command pausebench measures stop-the-world pause times per cycle mode
// (normal / select / prune) under both mark modes and writes the results
// as JSON. It seeds and refreshes BENCH_pause.json, the repo's
// perf-trajectory baseline for GC pauses:
//
//	go run ./cmd/pausebench -o BENCH_pause.json
//
// The workload is the adversarial case for a fully-STW closure: a
// list-leak program whose live closure grows toward the heap limit, with
// the default pruning policy installed so the controller walks the
// paper's INACTIVE → OBSERVE → SELECT → PRUNE state machine and the
// pruned list regrows for the next round. Every cycle mode therefore
// recurs across the run, and each one's pauses are reported separately:
// a fully-STW cycle pays the whole closure in one pause, while under
// mostly-concurrent marking only the root snapshot, the final remark
// (which for SELECT/PRUNE also scores candidates and poisons references
// over the already-complete closure), and promotion bookkeeping stay
// inside pauses.
//
// The report embeds two pre-change STW baselines: the original
// list-leak ModeNormal rows from before concurrent marking existed
// (commit d9b307e), and prune-leak rows per cycle mode measured before
// SELECT/PRUNE learned to run concurrently (commit c750445). The JSON
// alone answers "what did taking each mode's closure off the pause buy":
// compare baseline rows against the matching mark=concurrent rows. Each
// measurement repeats -repeat times and keeps, per cycle mode, the run
// with the smallest max pause (least scheduler noise).
//
// With -assert-speedup N the tool exits non-zero unless the concurrent
// select and prune max-pause speedups vs the embedded baseline are both
// at least N — the CI guard that the SELECT/PRUNE latency win holds.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"

	"leakpruning/internal/core"
	"leakpruning/internal/gc"
	"leakpruning/internal/vm"
)

// cycleModes are the per-cycle-mode report rows, in gc.Mode order.
var cycleModes = []gc.Mode{gc.ModeNormal, gc.ModeSelect, gc.ModePrune}

// baselineRow is one pre-change measurement, kept verbatim in the report.
type baselineRow struct {
	Workload    string  `json:"workload"`
	Mode        string  `json:"mode"`
	Iters       int     `json:"iters"`
	Cycles      int     `json:"cycles"`
	MaxPauseNs  int64   `json:"max_pause_ns"`
	P99PauseNs  int64   `json:"p99_pause_ns"`
	P50PauseNs  int64   `json:"p50_pause_ns"`
	MeanPauseNs float64 `json:"mean_pause_ns"`
}

// preSTWBaseline anchors the concurrent-marking work: fully-STW pause
// statistics measured before the corresponding concurrent path existed,
// at GOMAXPROCS=1 on an Intel Xeon @ 2.10GHz with the default -iters.
// The list-leak row predates concurrent marking entirely (commit
// d9b307e, no pruning policy installed); the prune-leak rows were
// measured at commit c750445, when ModeNormal already marked
// concurrently but SELECT and PRUNE still paid a full STW closure. Do
// not regenerate these with current code — they exist precisely to pin
// what the pre-change collector cost.
var preSTWBaseline = []baselineRow{
	{Workload: "list-leak", Mode: "normal", Iters: 12000, Cycles: 5,
		MaxPauseNs: 3_327_053, P99PauseNs: 2_729_593, P50PauseNs: 2_377_136,
		MeanPauseNs: 2_545_850},
	{Workload: "prune-leak", Mode: "normal", Iters: 12000, Cycles: 172,
		MaxPauseNs: 220_972, P99PauseNs: 200_807, P50PauseNs: 107_532,
		MeanPauseNs: 115_092.8},
	{Workload: "prune-leak", Mode: "select", Iters: 12000, Cycles: 6,
		MaxPauseNs: 571_208, P99PauseNs: 462_904, P50PauseNs: 170_091,
		MeanPauseNs: 288_146.8},
	{Workload: "prune-leak", Mode: "prune", Iters: 12000, Cycles: 6,
		MaxPauseNs: 446_767, P99PauseNs: 439_407, P50PauseNs: 358_843,
		MeanPauseNs: 374_321},
}

// baselineFor returns the embedded pre-change row for a workload + cycle
// mode, or nil when none is pinned.
func baselineFor(workload, mode string) *baselineRow {
	for i := range preSTWBaseline {
		if preSTWBaseline[i].Workload == workload && preSTWBaseline[i].Mode == mode {
			return &preSTWBaseline[i]
		}
	}
	return nil
}

type resultRow struct {
	Workload    string  `json:"workload"`
	Mark        string  `json:"mark"`
	Mode        string  `json:"mode"`
	Iters       int     `json:"iters"`
	Cycles      int     `json:"cycles"`
	MaxPauseNs  int64   `json:"max_pause_ns"`
	P99PauseNs  int64   `json:"p99_pause_ns"`
	P50PauseNs  int64   `json:"p50_pause_ns"`
	MeanPauseNs float64 `json:"mean_pause_ns"`
	// TotalPauseNs is the sum of all pause time for this cycle mode —
	// concurrent mode trades one long pause for three short ones, and this
	// shows the trade did not silently multiply the total stopped time.
	TotalPauseNs int64 `json:"total_pause_ns"`
}

type report struct {
	GoMaxProcs   int    `json:"gomaxprocs"`
	NumCPU       int    `json:"num_cpu"`
	Repeat       int    `json:"repeat"`
	BaselineNote string `json:"baseline_note"`
	// Baseline holds the pre-change measurements (see preSTWBaseline).
	Baseline []baselineRow `json:"baseline_pre_concurrent"`
	Results  []resultRow   `json:"results"`
	// MaxPauseSpeedupByMode is, per cycle mode, the embedded prune-leak
	// baseline's max pause divided by the concurrent run's — the headline
	// numbers for taking each mode's closure off the pause.
	MaxPauseSpeedupByMode map[string]float64 `json:"max_pause_speedup_by_mode"`
}

// pauseStats aggregates the per-pause durations of every cycle of one
// mode in one run.
type pauseStats struct {
	cycles int
	pauses []int64 // individual pause durations, ns
}

func (s *pauseStats) percentile(p float64) int64 {
	if len(s.pauses) == 0 {
		return 0
	}
	sorted := append([]int64(nil), s.pauses...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(p * float64(len(sorted)-1))
	return sorted[idx]
}

func (s *pauseStats) max() int64 {
	var m int64
	for _, p := range s.pauses {
		if p > m {
			m = p
		}
	}
	return m
}

func (s *pauseStats) total() int64 {
	var t int64
	for _, p := range s.pauses {
		t += p
	}
	return t
}

func (s *pauseStats) mean() float64 {
	if len(s.pauses) == 0 {
		return 0
	}
	return float64(s.total()) / float64(len(s.pauses))
}

// measure runs the prune-leak workload under the given mark mode and
// collects pause durations grouped by cycle mode. The program leaks a
// linked list of 2KB payloads toward a 4MB heap limit with the default
// pruning policy installed, so the controller repeatedly runs OBSERVE,
// SELECT (two closures: in-use then stale), and PRUNE (poisoning) cycles
// as the list is pruned and regrows; the heap limit caps the live
// closure, so per-mode pause costs are comparable across -iters values.
func measure(mode vm.MarkMode, iters int) map[string]*pauseStats {
	stats := make(map[string]*pauseStats)
	for _, m := range cycleModes {
		stats[m.String()] = &pauseStats{}
	}
	v := vm.New(vm.Options{
		HeapLimit:      4 << 20,
		EnableBarriers: true,
		GCWorkers:      1,
		Policy:         core.DefaultPolicy{},
		MarkMode:       mode,
		OnGC: func(ev vm.Event) {
			st := stats[ev.Result.Mode.String()]
			st.cycles++
			for _, p := range ev.Pauses {
				st.pauses = append(st.pauses, p.Nanoseconds())
			}
		},
	})
	holder := v.DefineClass("Holder", 2, 0)
	payload := v.DefineClass("Payload", 0, 2048)
	scratch := v.DefineClass("Scratch", 0, 512)
	g := v.AddGlobal()
	err := v.RunThread("pausebench", func(th *vm.Thread) {
		for i := 0; i < iters; i++ {
			th.Scope(func() {
				h := th.New(holder)
				th.Store(h, 0, th.New(payload))
				th.Store(h, 1, th.LoadGlobal(g))
				th.StoreGlobal(g, h)
				// Scratch churn drives allocation volume past the soft trigger
				// so cycles keep firing as the leaked list grows.
				for j := 0; j < 8; j++ {
					th.New(scratch)
				}
			})
		}
	})
	if err != nil {
		panic(fmt.Sprintf("pausebench %v: %v", mode, err))
	}
	return stats
}

func main() {
	out := flag.String("o", "BENCH_pause.json", "output path ('-' for stdout)")
	iters := flag.Int("iters", 12000, "prune-leak iterations per measurement")
	repeat := flag.Int("repeat", 3, "repetitions per measurement (best kept)")
	assert := flag.Float64("assert-speedup", 0,
		"exit non-zero unless concurrent select and prune max-pause speedups vs baseline are >= this (0 disables)")
	flag.Parse()
	if *iters < 1 || *repeat < 1 {
		fmt.Fprintln(os.Stderr, "pausebench: -iters and -repeat must be >= 1")
		os.Exit(2)
	}

	rep := report{
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Repeat:     *repeat,
		BaselineNote: "baseline_pre_concurrent rows were measured fully-STW before the " +
			"corresponding concurrent path existed (list-leak normal: commit d9b307e, " +
			"pre concurrent marking; prune-leak rows: commit c750445, pre concurrent " +
			"SELECT/PRUNE); compare them against mark=concurrent rows on the same " +
			"workload and cycle mode",
		Baseline:              preSTWBaseline,
		MaxPauseSpeedupByMode: make(map[string]float64),
	}
	for _, mode := range []vm.MarkMode{vm.MarkSTW, vm.MarkConcurrent} {
		// Per cycle mode, keep the repeat with the smallest max pause.
		best := make(map[string]*pauseStats)
		for r := 0; r < *repeat; r++ {
			for cm, st := range measure(mode, *iters) {
				if cur, ok := best[cm]; !ok || cur.cycles == 0 ||
					(st.cycles > 0 && st.max() < cur.max()) {
					best[cm] = st
				}
			}
		}
		for _, cm := range cycleModes {
			st := best[cm.String()]
			fmt.Fprintf(os.Stderr,
				"pausebench: prune-leak mark=%s mode=%s: %d cycles, max pause %.1fus, p50 %.1fus, total stopped %.1fus\n",
				mode, cm, st.cycles, float64(st.max())/1e3, float64(st.percentile(0.5))/1e3,
				float64(st.total())/1e3)
			rep.Results = append(rep.Results, resultRow{
				Workload: "prune-leak", Mark: mode.String(), Mode: cm.String(),
				Iters:        *iters,
				Cycles:       st.cycles,
				MaxPauseNs:   st.max(),
				P99PauseNs:   st.percentile(0.99),
				P50PauseNs:   st.percentile(0.5),
				MeanPauseNs:  st.mean(),
				TotalPauseNs: st.total(),
			})
			if mode == vm.MarkConcurrent && st.max() > 0 {
				if base := baselineFor("prune-leak", cm.String()); base != nil && base.MaxPauseNs > 0 {
					rep.MaxPauseSpeedupByMode[cm.String()] =
						float64(base.MaxPauseNs) / float64(st.max())
				}
			}
		}
	}
	for _, cm := range cycleModes {
		if s, ok := rep.MaxPauseSpeedupByMode[cm.String()]; ok {
			fmt.Fprintf(os.Stderr, "pausebench: mode=%s max-pause speedup vs pre-change baseline: %.1fx\n",
				cm, s)
		}
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		panic(err)
	}
	data = append(data, '\n')
	if *out == "-" {
		os.Stdout.Write(data)
	} else {
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "pausebench: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "pausebench: wrote %s\n", *out)
	}

	if *assert > 0 {
		ok := true
		for _, cm := range []gc.Mode{gc.ModeSelect, gc.ModePrune} {
			s, have := rep.MaxPauseSpeedupByMode[cm.String()]
			if !have || s < *assert {
				fmt.Fprintf(os.Stderr,
					"pausebench: ASSERT FAILED: mode=%s max-pause speedup %.2fx < required %.2fx\n",
					cm, s, *assert)
				ok = false
			}
		}
		if !ok {
			os.Exit(1)
		}
	}
}
