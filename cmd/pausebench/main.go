// Command pausebench measures stop-the-world pause times for ModeNormal
// collections under both mark modes and writes the results as JSON. It
// seeds and refreshes BENCH_pause.json, the repo's perf-trajectory baseline
// for GC pauses:
//
//	go run ./cmd/pausebench -o BENCH_pause.json
//
// The workload is the adversarial case for a fully-STW mark: a
// list-leak program whose live closure grows without bound, so every STW
// cycle pays an ever-longer in-use trace inside its single pause. Under
// mostly-concurrent marking the trace and the sweep run while the mutator
// executes, and only the root snapshot, the final remark, and the
// promotion bookkeeping remain inside pauses.
//
// The report embeds the pre-change STW baseline (measured before the
// concurrent mark mode existed) so the JSON alone answers "what did taking
// the closure off the pause buy": compare the baseline rows against the
// matching mark=concurrent rows. Each measurement repeats -repeat times
// and keeps the run with the smallest max pause (least scheduler noise).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"

	"leakpruning/internal/gc"
	"leakpruning/internal/vm"
)

// baselineRow is one pre-change measurement, kept verbatim in the report.
type baselineRow struct {
	Workload     string  `json:"workload"`
	Iters        int     `json:"iters"`
	NormalCycles int     `json:"normal_cycles"`
	MaxPauseNs   int64   `json:"max_pause_ns"`
	P99PauseNs   int64   `json:"p99_pause_ns"`
	P50PauseNs   int64   `json:"p50_pause_ns"`
	MeanPauseNs  float64 `json:"mean_pause_ns"`
}

// preSTWBaseline is the anchor the concurrent-marking work is judged
// against: ModeNormal pause statistics for the list-leak workload measured
// at commit d9b307e (single-pause fully-STW cycles: plan, in-use trace,
// sweep, and promotion all under one stop) at GOMAXPROCS=1 on an Intel
// Xeon @ 2.10GHz with the default -iters. Do not regenerate these with
// current code — they exist precisely to pin what the pre-change collector
// cost.
var preSTWBaseline = []baselineRow{
	{Workload: "list-leak", Iters: 12000, NormalCycles: 5,
		MaxPauseNs: 3_327_053, P99PauseNs: 2_729_593, P50PauseNs: 2_377_136,
		MeanPauseNs: 2_545_850},
}

type resultRow struct {
	Workload     string  `json:"workload"`
	Mark         string  `json:"mark"`
	Iters        int     `json:"iters"`
	NormalCycles int     `json:"normal_cycles"`
	MaxPauseNs   int64   `json:"max_pause_ns"`
	P99PauseNs   int64   `json:"p99_pause_ns"`
	P50PauseNs   int64   `json:"p50_pause_ns"`
	MeanPauseNs  float64 `json:"mean_pause_ns"`
	// TotalPauseNs is the sum of all ModeNormal pause time — concurrent mode
	// trades one long pause for three short ones, and this shows the trade
	// did not silently multiply the total stopped time.
	TotalPauseNs int64 `json:"total_pause_ns"`
}

type report struct {
	GoMaxProcs   int    `json:"gomaxprocs"`
	NumCPU       int    `json:"num_cpu"`
	Repeat       int    `json:"repeat"`
	BaselineNote string `json:"baseline_note"`
	// Baseline holds the pre-change measurements (see preSTWBaseline).
	Baseline []baselineRow `json:"baseline_pre_concurrent"`
	Results  []resultRow   `json:"results"`
	// MaxPauseSpeedup is baseline max pause / concurrent max pause for the
	// list-leak workload — the headline number for this change.
	MaxPauseSpeedup float64 `json:"max_pause_speedup_vs_baseline"`
}

// pauseStats aggregates the per-pause durations of every ModeNormal cycle
// in one run.
type pauseStats struct {
	cycles int
	pauses []int64 // individual pause durations, ns
}

func (s *pauseStats) percentile(p float64) int64 {
	if len(s.pauses) == 0 {
		return 0
	}
	sorted := append([]int64(nil), s.pauses...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(p * float64(len(sorted)-1))
	return sorted[idx]
}

func (s *pauseStats) max() int64 {
	var m int64
	for _, p := range s.pauses {
		if p > m {
			m = p
		}
	}
	return m
}

func (s *pauseStats) total() int64 {
	var t int64
	for _, p := range s.pauses {
		t += p
	}
	return t
}

func (s *pauseStats) mean() float64 {
	if len(s.pauses) == 0 {
		return 0
	}
	return float64(s.total()) / float64(len(s.pauses))
}

// measure runs the list-leak workload under the given mark mode and
// collects ModeNormal pause durations. The program leaks a linked list of
// 2KB payloads, so the live closure — and with it a fully-STW mark pause —
// grows linearly over the run. No pruning policy is installed: the bench
// isolates ModeNormal cycles, the only mode the concurrent path changes.
func measure(mode vm.MarkMode, iters int) pauseStats {
	var st pauseStats
	v := vm.New(vm.Options{
		HeapLimit:      64 << 20,
		EnableBarriers: true,
		GCWorkers:      1,
		MarkMode:       mode,
		OnGC: func(ev vm.Event) {
			if ev.Result.Mode != gc.ModeNormal {
				return
			}
			st.cycles++
			for _, p := range ev.Pauses {
				st.pauses = append(st.pauses, p.Nanoseconds())
			}
		},
	})
	holder := v.DefineClass("Holder", 2, 0)
	payload := v.DefineClass("Payload", 0, 2048)
	scratch := v.DefineClass("Scratch", 0, 512)
	g := v.AddGlobal()
	err := v.RunThread("pausebench", func(th *vm.Thread) {
		for i := 0; i < iters; i++ {
			th.Scope(func() {
				h := th.New(holder)
				th.Store(h, 0, th.New(payload))
				th.Store(h, 1, th.LoadGlobal(g))
				th.StoreGlobal(g, h)
				// Scratch churn drives allocation volume past the soft trigger
				// so cycles keep firing as the leaked list grows.
				for j := 0; j < 8; j++ {
					th.New(scratch)
				}
			})
		}
	})
	if err != nil {
		panic(fmt.Sprintf("pausebench %v: %v", mode, err))
	}
	return st
}

func main() {
	out := flag.String("o", "BENCH_pause.json", "output path ('-' for stdout)")
	iters := flag.Int("iters", 12000, "list-leak iterations per measurement")
	repeat := flag.Int("repeat", 3, "repetitions per measurement (best kept)")
	flag.Parse()
	if *iters < 1 || *repeat < 1 {
		fmt.Fprintln(os.Stderr, "pausebench: -iters and -repeat must be >= 1")
		os.Exit(2)
	}

	rep := report{
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Repeat:     *repeat,
		BaselineNote: "baseline_pre_concurrent rows were measured before mostly-concurrent " +
			"marking existed (commit d9b307e, single fully-STW pause per cycle); compare " +
			"them against mark=concurrent rows on the same workload",
		Baseline: preSTWBaseline,
	}
	var concurrentMax int64
	for _, mode := range []vm.MarkMode{vm.MarkSTW, vm.MarkConcurrent} {
		var best pauseStats
		for r := 0; r < *repeat; r++ {
			st := measure(mode, *iters)
			if best.cycles == 0 || st.max() < best.max() {
				best = st
			}
		}
		fmt.Fprintf(os.Stderr,
			"pausebench: list-leak mark=%s: %d normal cycles, max pause %.2fms, p50 %.2fms, total stopped %.2fms\n",
			mode, best.cycles, float64(best.max())/1e6, float64(best.percentile(0.5))/1e6,
			float64(best.total())/1e6)
		rep.Results = append(rep.Results, resultRow{
			Workload: "list-leak", Mark: mode.String(), Iters: *iters,
			NormalCycles: best.cycles,
			MaxPauseNs:   best.max(),
			P99PauseNs:   best.percentile(0.99),
			P50PauseNs:   best.percentile(0.5),
			MeanPauseNs:  best.mean(),
			TotalPauseNs: best.total(),
		})
		if mode == vm.MarkConcurrent {
			concurrentMax = best.max()
		}
	}
	if concurrentMax > 0 {
		rep.MaxPauseSpeedup = float64(preSTWBaseline[0].MaxPauseNs) / float64(concurrentMax)
		fmt.Fprintf(os.Stderr, "pausebench: max-pause speedup vs pre-change baseline: %.1fx\n",
			rep.MaxPauseSpeedup)
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		panic(err)
	}
	data = append(data, '\n')
	if *out == "-" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "pausebench: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "pausebench: wrote %s\n", *out)
}
