// Command leakbench runs the ten leak programs of the paper's Table 1 under
// the unmodified-VM baseline and the three prediction policies of §6.1,
// regenerating Tables 1 and 2.
//
// Usage:
//
//	leakbench -table 1                 # Table 1: base vs. default pruning
//	leakbench -table 2                 # Table 2: all prediction algorithms
//	leakbench -program eclipsediff -policy default -v
//
// Iteration counts are not expected to match the paper's absolute numbers
// (different hardware, different substrate); the ratios and per-program
// outcomes are the reproduction target. Runs that stay healthy are stopped
// at -max-iters (the analogue of the paper's 24-hour terminations) and
// reported as ">N".
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"
	"time"

	"leakpruning/internal/harness"
	"leakpruning/internal/obs"
	"leakpruning/internal/trace"
	"leakpruning/internal/workload"
)

func main() {
	var (
		table    = flag.Int("table", 0, "regenerate paper table 1 or 2, or 3 for the disk-offloading comparison (0 = single run)")
		program  = flag.String("program", "", "single program to run (see -list)")
		policy   = flag.String("policy", "default", "pruning policy: off, default, most-stale, indiv-refs")
		heapMB   = flag.Int("heap", 0, "heap limit in MiB (0 = program default)")
		maxIters = flag.Int("max-iters", harness.DefaultMaxIters, "iteration cap for healthy runs")
		timeCap  = flag.Duration("time-cap", 2*time.Minute, "wall-clock cap per run")
		fullHeap = flag.Bool("full-heap-only", false, "use the paper's option (1): prune only at 100% heap fullness")
		genMode  = flag.Bool("generational", false, "enable nursery (minor) collections")
		obsDir   = flag.String("obs-dir", "", "write trace_*.json and metrics_*.json artifacts to this directory (single-program mode; empty = off)")
		record   = flag.String("record", "", "record an allocation trace to this path (single-program mode; replay with cmd/tracetool)")
		verbose  = flag.Bool("v", false, "stream prune and OOM events")
		list     = flag.Bool("list", false, "list available programs")
	)
	flag.Parse()

	if *list {
		for _, n := range workload.Names() {
			p, _ := workload.New(n)
			fmt.Printf("%-18s %s\n", n, p.Description())
		}
		return
	}

	switch {
	case *table == 1:
		runTable1(*maxIters, *timeCap, *verbose)
	case *table == 2:
		runTable2(*maxIters, *timeCap, *verbose)
	case *table == 3:
		runMeltComparison(*maxIters, *timeCap, *verbose)
	case *program != "":
		cfg := harness.Config{
			Program:      *program,
			Policy:       *policy,
			HeapLimit:    uint64(*heapMB) << 20,
			MaxIters:     *maxIters,
			MaxDuration:  *timeCap,
			FullHeapOnly: *fullHeap,
			Generational: *genMode,
		}
		if *verbose {
			cfg.Verbose = func(format string, args ...any) { fmt.Printf(format+"\n", args...) }
		}
		if *obsDir != "" {
			cfg.Obs = obs.New()
		}
		var rec *trace.Recorder
		if *record != "" {
			rec = trace.NewRecorder()
			cfg.Record = rec
			cfg.HashLiveSet = true // the replay equivalence anchor
		}
		res, err := harness.Run(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if rec != nil {
			f, ferr := os.Create(*record)
			if ferr == nil {
				var n int64
				if n, ferr = rec.WriteTo(f); ferr == nil {
					ferr = f.Close()
					fmt.Printf("recorded allocation trace: %s (%d bytes)\n", *record, n)
				}
			}
			if ferr != nil {
				fmt.Fprintln(os.Stderr, ferr)
				os.Exit(1)
			}
		}
		if cfg.Obs != nil {
			tag := fmt.Sprintf("%s_%s", *program, *policy)
			tracePath, metricsPath, werr := obs.WriteArtifacts(cfg.Obs, *obsDir, tag)
			if werr != nil {
				fmt.Fprintln(os.Stderr, werr)
				os.Exit(1)
			}
			fmt.Printf("wrote %s (load at https://ui.perfetto.dev) and %s\n", tracePath, metricsPath)
		}
		fmt.Println(res.Describe())
		if len(res.Prunes) > 0 {
			fmt.Printf("pruned edge types (first 10 events):\n")
			for i, ev := range res.Prunes {
				if i >= 10 {
					fmt.Printf("  ... %d more prune events\n", len(res.Prunes)-10)
					break
				}
				fmt.Printf("  gc %d: %s (%d refs, %d bytes freed)\n", ev.GCIndex, ev.Selection, ev.PrunedRefs, ev.BytesFreed)
			}
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func fmtIters(res harness.Result) string {
	if res.Capped() && res.Reason != harness.EndCompleted {
		return fmt.Sprintf(">%d", res.Iterations)
	}
	return fmt.Sprintf("%d", res.Iterations)
}

func fmtRatio(res, base harness.Result) string {
	r := res.Ratio(base)
	prefix := ""
	if res.Capped() && res.Reason != harness.EndCompleted {
		prefix = ">"
	}
	return fmt.Sprintf("%s%.1fx", prefix, r)
}

// effect renders the Table 1 "Effect" column.
func effect(res, base harness.Result) string {
	switch {
	case res.Reason == harness.EndCompleted:
		return "completes (short-running)"
	case res.Capped():
		return fmt.Sprintf("runs %s longer (healthy at cap)", fmtRatio(res, base))
	case res.Ratio(base) < 1.15:
		return "no help"
	default:
		return fmt.Sprintf("runs %s longer", fmtRatio(res, base))
	}
}

func mustRun(cfg harness.Config, verbose bool) harness.Result {
	if verbose {
		cfg.Verbose = func(format string, args ...any) { fmt.Printf(format+"\n", args...) }
		fmt.Printf("running %s / %s ...\n", cfg.Program, cfg.Policy)
	}
	res, err := harness.Run(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	return res
}

func runTable1(maxIters int, timeCap time.Duration, verbose bool) {
	fmt.Println("Table 1: ten leaks and leak pruning's effect on them")
	fmt.Println("(paper: EclipseDiff >200x, ListLeak/SwapLeak indefinitely, EclipseCP 81x,")
	fmt.Println(" MySQL 35x, SPECjbb2000 4.7x, JbbMod 21x, Mckoi 1.6x, DualLeak/Delaunay no help)")
	fmt.Println()
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Leak\tBase iters\tPruning iters\tEffect\tReason\tPrunes")
	for _, name := range workload.LeakNames() {
		base := mustRun(harness.Config{Program: name, Policy: "off", MaxIters: maxIters, MaxDuration: timeCap}, verbose)
		def := mustRun(harness.Config{Program: name, Policy: "default", MaxIters: maxIters, MaxDuration: timeCap}, verbose)
		fmt.Fprintf(w, "%s\t%s\t%s\t%s\t%s\t%d\n",
			name, fmtIters(base), fmtIters(def), effect(def, base), def.Reason, len(def.Prunes))
	}
	w.Flush()
}

// runMeltComparison contrasts leak pruning with the Melt/LeakSurvivor-style
// disk-offloading baseline (§6/§7): offloading extends every leak by about
// the disk/heap ratio and then crashes when the disk fills; pruning is
// unbounded on all-dead leaks but must predict perfectly.
func runMeltComparison(maxIters int, timeCap time.Duration, verbose bool) {
	fmt.Println("Table 3 (ours): leak pruning vs. disk offloading (Melt/LeakSurvivor-style)")
	fmt.Println("(disk budget = 4x heap; the paper: disk approaches \"will eventually")
	fmt.Println(" exhaust disk space and crash\" while pruning bounds memory)")
	fmt.Println()
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Leak\tBase\tOffload\tdisk full?\tPruning\tPruning reason")
	for _, name := range workload.LeakNames() {
		base := mustRun(harness.Config{Program: name, Policy: "off", MaxIters: maxIters, MaxDuration: timeCap}, verbose)
		melt := mustRun(harness.Config{Program: name, Policy: "melt", MaxIters: maxIters, MaxDuration: timeCap}, verbose)
		def := mustRun(harness.Config{Program: name, Policy: "default", MaxIters: maxIters, MaxDuration: timeCap}, verbose)
		diskFull := "no"
		if melt.DiskExhausted() {
			diskFull = "yes"
		}
		fmt.Fprintf(w, "%s\t%s\t%s\t%s\t%s\t%s\n",
			name, fmtIters(base), fmtIters(melt), diskFull, fmtIters(def), def.Reason)
	}
	w.Flush()
}

func runTable2(maxIters int, timeCap time.Duration, verbose bool) {
	policies := []string{"off", "most-stale", "indiv-refs", "default"}
	fmt.Println("Table 2: iterations executed by leak programs under each prediction algorithm")
	fmt.Println("(Base = unmodified VM; Most stale = LeakSurvivor/Melt-style; Indiv refs = no")
	fmt.Println(" data structures; Default = leak pruning's edge-type + data-structure algorithm)")
	fmt.Println()
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Leak\tBase\tMost stale\tIndiv refs\tDefault\tEdge types")
	for _, name := range workload.LeakNames() {
		row := fmt.Sprintf("%s", name)
		var results []harness.Result
		for _, pol := range policies {
			res := mustRun(harness.Config{Program: name, Policy: pol, MaxIters: maxIters, MaxDuration: timeCap}, verbose)
			results = append(results, res)
			row += "\t" + fmtIters(res)
		}
		row += fmt.Sprintf("\t%d", results[len(results)-1].EdgeTypes)
		fmt.Fprintln(w, row)
	}
	w.Flush()
}
