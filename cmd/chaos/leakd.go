package main

import (
	"fmt"
	"time"

	"leakpruning/internal/faultinject"
	"leakpruning/internal/obs"
	"leakpruning/internal/server"
)

// The leakd scenarios extend the campaign from one VM to the multi-tenant
// daemon: faults are injected into exactly one tenant (a request-handler
// panic storm, or a leak driven into budget-pressure eviction with the
// drain forced onto its timeout path) and the oracle is crash ISOLATION —
// the sibling tenants' per-cycle live-set hashes must be byte-identical to
// a fault-free control daemon's, with zero invariant-audit violations
// anywhere.
//
// Determinism: the daemon runs with manual budget probes and a fixed
// sequential round-robin request schedule, so control and fault runs issue
// identical request sequences to the sibling VMs; each tenant's VM is
// fully independent, which is exactly the property under test.

const (
	leakdBudget   = 1 << 20
	leakdRounds   = 80 // the victim leaks ~23 KiB/round; eviction trips near round 44
	leakdSiblingA = "sib-a"
	leakdSiblingB = "sib-b"
)

// leakdScenarioNames lists the daemon scenarios in report order.
func leakdScenarioNames() []string {
	return []string{"leakd-evict", "leakd-quarantine", "pipeline-isolation"}
}

// leakdCell runs one daemon campaign cell and returns the sibling hash
// logs plus a partially filled record (evictions, quarantines, audits).
func leakdCell(scenarioName string, seed uint64, faulty bool) (map[string][]uint64, runRecord, error) {
	rec := runRecord{Workload: "multi-tenant", Scenario: scenarioName, Seed: seed}
	cfg := server.Config{
		Budget:              leakdBudget,
		QuarantineThreshold: 3,
		RequestTimeout:      30 * time.Second,
		DrainTimeout:        2 * time.Second,
		Obs:                 obs.New(),
	}
	if faulty && scenarioName == "leakd-evict" {
		// Daemon-level stalls on the probe path: bounded delay, no
		// semantic effect allowed.
		inj := faultinject.New(seed)
		inj.Arm(faultinject.BudgetProbeStall, 0.25)
		cfg.Injector = inj
	}
	s, err := server.New(cfg)
	if err != nil {
		return nil, rec, err
	}
	defer s.Shutdown()

	siblings := []server.TenantConfig{
		{Name: leakdSiblingA, Workload: "listleak", Policy: "default", HeapLimit: 256 << 10},
		{Name: leakdSiblingB, Workload: "swapleak", Policy: "default", HeapLimit: 256 << 10},
	}
	for _, tc := range siblings {
		if _, err := s.Admit(tc); err != nil {
			return nil, rec, fmt.Errorf("admit %s: %w", tc.Name, err)
		}
	}
	victim := server.TenantConfig{Name: "victim", Workload: "listleak", HeapLimit: 256 << 10, Policy: "default"}
	if scenarioName == "leakd-evict" {
		// The victim leaks with pruning off and a budget-sized heap: only
		// the pressure ladder can (and must) stop it.
		victim.Policy = "off"
		victim.HeapLimit = leakdBudget
	}
	if faulty {
		inj := faultinject.New(seed)
		switch scenarioName {
		case "leakd-quarantine":
			inj.Arm(faultinject.TenantRequestPanic, 1.0)
		case "leakd-evict":
			inj.Arm(faultinject.EvictDrainTimeout, 1.0)
		}
		victim.DaemonInjector = inj
	}
	if _, err := s.Admit(victim); err != nil {
		return nil, rec, fmt.Errorf("admit victim: %w", err)
	}

	// Fixed schedule: siblings always get their requests; the victim gets
	// one while it still serves. Victim faults are expected traffic.
	for round := 0; round < leakdRounds; round++ {
		for _, name := range []string{leakdSiblingA, leakdSiblingB} {
			if _, err := s.RunRequest(name, 2); err != nil {
				return nil, rec, fmt.Errorf("round %d: sibling %s: %w", round, name, err)
			}
		}
		if st := s.Tenants(); victimServing(st) {
			if _, err := s.RunRequest("victim", 1); err != nil {
				if _, isPanic := err.(*server.RequestPanicError); !isPanic {
					return nil, rec, fmt.Errorf("round %d: victim returned a non-isolated error: %w", round, err)
				}
			}
		}
		res := s.ProbeBudget()
		if res.Evicted != "" {
			rec.Evictions++
		}
	}
	for _, st := range s.Tenants() {
		if st.Name == "victim" && st.State == "quarantined" {
			rec.Quarantines++
		}
	}

	hashes := map[string][]uint64{}
	for _, name := range []string{leakdSiblingA, leakdSiblingB} {
		tn := s.Tenant(name)
		if tn == nil {
			return nil, rec, fmt.Errorf("sibling %s missing at end of run", name)
		}
		hashes[name] = tn.CycleHashes()
		if len(hashes[name]) == 0 {
			return nil, rec, fmt.Errorf("sibling %s ran no collections; the hash oracle is vacuous", name)
		}
	}

	srep, serr := s.Shutdown()
	if srep != nil {
		rec.AuditsRun = uint64(srep.Tenants)
		for _, n := range srep.AuditViolations {
			rec.AuditViolations += uint64(n)
		}
	}
	if serr != nil {
		return nil, rec, fmt.Errorf("shutdown: %w", serr)
	}
	rec.Iterations = leakdRounds
	rec.Reason = "rounds-complete"
	return hashes, rec, nil
}

func victimServing(statuses []server.TenantStatus) bool {
	for _, st := range statuses {
		if st.Name == "victim" {
			return st.State == "serving"
		}
	}
	return false
}

// runLeakdScenarios executes both daemon scenarios across seeds and
// returns their records, comparing each fault run's sibling hashes to the
// fault-free control byte for byte.
func runLeakdScenarios(seeds int, verbose bool) []runRecord {
	if seeds > 5 {
		seeds = 5 // the draw space is tiny; more seeds add runtime, not coverage
	}
	var recs []runRecord
	for _, name := range leakdScenarioNames() {
		if name == "pipeline-isolation" {
			recs = append(recs, runPipelineIsolation(seeds, verbose)...)
			continue
		}
		// One control per scenario: no faults anywhere, same schedule.
		controlHashes, controlRec, err := leakdCell(name, 1, false)
		if err != nil {
			recs = append(recs, runRecord{Workload: "multi-tenant", Scenario: name + "-control",
				Seed: 1, Escape: err.Error()})
			continue
		}
		if name == "leakd-evict" && controlRec.Evictions == 0 {
			controlRec.EquivalenceMismatch = "control never evicted the leaky victim; the scenario is vacuous"
		}
		for seed := uint64(1); seed <= uint64(seeds); seed++ {
			t0 := time.Now()
			hashes, rec, err := leakdCell(name, seed, true)
			rec.DurationMs = float64(time.Since(t0).Microseconds()) / 1000
			if err != nil {
				rec.Escape = err.Error()
				recs = append(recs, rec)
				continue
			}
			switch name {
			case "leakd-evict":
				if rec.Evictions != controlRec.Evictions {
					rec.EquivalenceMismatch = fmt.Sprintf("fault run evicted %d tenants, control %d",
						rec.Evictions, controlRec.Evictions)
				}
			case "leakd-quarantine":
				if rec.Quarantines == 0 {
					rec.EquivalenceMismatch = "panic storm never quarantined the victim"
				}
			}
			for _, sib := range []string{leakdSiblingA, leakdSiblingB} {
				if mismatch := compareHashes(sib, hashes[sib], controlHashes[sib]); mismatch != "" {
					rec.EquivalenceMismatch = mismatch
					break
				}
			}
			if verbose {
				fmt.Printf("%-20s %-10s seed %2d: %d rounds, evictions=%d quarantines=%d (audits %d)\n",
					name, "daemon", seed, rec.Iterations, rec.Evictions, rec.Quarantines, rec.AuditsRun)
			}
			recs = append(recs, rec)
		}
		recs = append(recs, controlRec)
	}
	return recs
}

// compareHashes demands byte-identical per-cycle live-set hashes between a
// sibling in the fault run and the same sibling in the control.
func compareHashes(name string, got, want []uint64) string {
	if len(got) != len(want) {
		return fmt.Sprintf("sibling %s ran %d collections, control ran %d", name, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			return fmt.Sprintf("sibling %s live-set hash diverged at cycle %d: %#x vs control %#x",
				name, i, got[i], want[i])
		}
	}
	return ""
}
