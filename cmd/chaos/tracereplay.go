package main

import (
	"bytes"
	"fmt"

	"leakpruning/internal/harness"
	"leakpruning/internal/trace"
)

// The trace-replay scenarios extend the campaign to the record/replay
// substrate (internal/trace + harness.Replay): a fault-free default-policy
// run of each workload is recorded, then
//
//   - trace-replay: a ×1 replay under the recorded options must reproduce
//     every GC cycle's live-set hash, candidate count, and pruned count
//     byte for byte (an EquivalenceMismatch otherwise), and
//   - trace-replay-x4: a ×4 thread-multiplied replay must stay audit-clean
//     with every clone making progress.
//
// Both replays run the full invariant audit; any violation fails the
// campaign like any other scenario.

// traceReplayScenarioNames lists the replay scenarios in report order.
func traceReplayScenarioNames() []string { return []string{"trace-replay", "trace-replay-x4"} }

// runTraceReplayScenarios records each workload once and replays it ×1
// (cycle-exact) and ×4 (audit-clean).
func runTraceReplayScenarios(workloads []string, iters int, heapLimit uint64, verbose bool) []runRecord {
	var recs []runRecord
	for _, w := range workloads {
		recTracer := trace.NewRecorder()
		cfg := controlConfig(w, 1, iters, heapLimit)
		cfg.HashLiveSet = true
		cfg.Record = recTracer
		res, err := harness.Run(cfg)

		base := runRecord{Workload: w, Scenario: "trace-replay", Seed: 1}
		if err != nil {
			base.Escape = fmt.Sprintf("record run failed: %v", err)
			recs = append(recs, base)
			continue
		}
		var buf bytes.Buffer
		if _, err := recTracer.WriteTo(&buf); err != nil {
			base.Escape = fmt.Sprintf("trace serialization failed: %v", err)
			recs = append(recs, base)
			continue
		}
		tr, err := trace.ReadTrace(buf.Bytes())
		if err != nil {
			base.Escape = fmt.Sprintf("trace parse failed: %v", err)
			recs = append(recs, base)
			continue
		}

		// ×1: cycle-exact equivalence with the recording.
		x1 := base
		rr, err := harness.Replay(harness.ReplayConfig{Trace: tr, AuditEveryGC: true})
		if err != nil {
			x1.Escape = fmt.Sprintf("replay failed: %v", err)
		} else {
			fillReplayRecord(&x1, rr)
			x1.HashCheckedCycles = len(rr.GCSamples)
			if cerr := harness.CompareCycles(tr, rr.GCSamples); cerr != nil {
				x1.EquivalenceMismatch = cerr.Error()
			} else if !rr.Capped() && rr.Clones[0].Reason != res.Reason {
				x1.EquivalenceMismatch = fmt.Sprintf("replay ended %s, recording ended %s",
					rr.Clones[0].Reason, res.Reason)
			}
		}
		recs = append(recs, x1)
		if verbose {
			fmt.Printf("%-20s %-10s seed  1: %d iters, %s (%d cycles hash-checked)\n",
				x1.Scenario, w, x1.Iterations, x1.Reason, x1.HashCheckedCycles)
		}

		// ×4: thread multiplication stays audit-clean.
		x4 := runRecord{Workload: w, Scenario: "trace-replay-x4", Seed: 1}
		rr4, err := harness.Replay(harness.ReplayConfig{Trace: tr, Multiply: 4, AuditEveryGC: true})
		if err != nil {
			x4.Escape = fmt.Sprintf("replay failed: %v", err)
		} else {
			fillReplayRecord(&x4, rr4)
			for _, c := range rr4.Clones {
				if c.Reason == harness.EndReplayDiverged || c.Reason == harness.EndTraceCorrupt {
					x4.Escape = fmt.Sprintf("clone %d failed structurally: %v (%v)", c.Clone, c.Reason, c.Err)
				}
			}
		}
		recs = append(recs, x4)
		if verbose {
			fmt.Printf("%-20s %-10s seed  1: %d iters, %s (%d audit violations)\n",
				x4.Scenario, w, x4.Iterations, x4.Reason, x4.AuditViolations)
		}
	}
	return recs
}

// fillReplayRecord copies a replay result into the campaign's record shape.
func fillReplayRecord(rec *runRecord, rr harness.ReplayResult) {
	worst := rr.Clones[0]
	for _, c := range rr.Clones {
		if !(harness.Result{Reason: c.Reason}).Capped() {
			worst = c
		}
		rec.Iterations += c.Iterations
	}
	rec.Reason = string(worst.Reason)
	rec.DurationMs = float64(rr.Duration.Milliseconds())
	rec.Collections = rr.VMStats.Collections
	rec.AuditsRun = rr.VMStats.AuditsRun
	rec.AuditViolations = uint64(len(rr.AuditReport))
	rec.Violations = rr.AuditReport
}
