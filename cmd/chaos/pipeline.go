package main

import (
	"fmt"
	"sync"
	"time"

	"leakpruning/internal/obs"
	"leakpruning/internal/server"
)

// The pipeline-isolation scenario: the "fault" injected into the victim
// tenant is CONCURRENCY itself. A serial-victim control and a
// concurrent-pipeline victim run the same campaign — a 4-goroutine
// mixed-size request storm at the victim with the per-GC invariant audit
// armed, concurrent with the siblings' fixed deterministic schedule — and
// the oracle is the same as for panic storms and forced evictions: zero
// audit violations in the victim, and sibling per-cycle live-set hashes
// byte-identical to the control's. In-tenant concurrency must stay inside
// the tenant.

const (
	pipelineBudget   = 16 << 20
	pipelineRounds   = 60
	pipelineStormers = 4
	pipelineReqs     = 40 // requests per storm goroutine
	pipelineBigIters = 8
)

// pipelineCell runs one campaign cell: siblings on the fixed schedule,
// the victim under storm — serial when pipelined is false (the control),
// through a 4-worker bounded-queue pipeline when true.
func pipelineCell(seed uint64, pipelined bool) (map[string][]uint64, runRecord, error) {
	rec := runRecord{Workload: "multi-tenant", Scenario: "pipeline-isolation", Seed: seed}
	cfg := server.Config{
		Budget:              pipelineBudget,
		QuarantineThreshold: -1, // storm OOM bursts must not mask the oracle
		RequestTimeout:      30 * time.Second,
		DrainTimeout:        2 * time.Second,
		Obs:                 obs.New(),
	}
	s, err := server.New(cfg)
	if err != nil {
		return nil, rec, err
	}
	defer s.Shutdown()

	siblings := []server.TenantConfig{
		{Name: leakdSiblingA, Workload: "listleak", Policy: "default", HeapLimit: 256 << 10},
		{Name: leakdSiblingB, Workload: "swapleak", Policy: "default", HeapLimit: 256 << 10},
	}
	for _, tc := range siblings {
		if _, err := s.Admit(tc); err != nil {
			return nil, rec, fmt.Errorf("admit %s: %w", tc.Name, err)
		}
	}
	victim := server.TenantConfig{Name: "victim", Workload: "queueleak", Policy: "default",
		HeapLimit: 8 << 20, AuditEveryGC: true}
	if pipelined {
		victim.Pipeline = server.PipelineConcurrent
		victim.Workers = 4
		victim.QueueDepth = 32
	}
	if _, err := s.Admit(victim); err != nil {
		return nil, rec, fmt.Errorf("admit victim: %w", err)
	}

	// The storm: mixed small/large requests from concurrent callers.
	// Tenant-isolated victim errors (OOM under pressure, cancellation) are
	// expected traffic; the oracle below is what must hold regardless.
	var wg sync.WaitGroup
	var ok, failed uint64
	var cntMu sync.Mutex
	for w := 0; w < pipelineStormers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < pipelineReqs; i++ {
				iters := 1
				if (seed+uint64(w)*7+uint64(i))%2 == 1 {
					iters = pipelineBigIters
				}
				_, err := s.RunRequest("victim", iters)
				cntMu.Lock()
				if err == nil {
					ok++
				} else {
					failed++
				}
				cntMu.Unlock()
			}
		}(w)
	}
	// The siblings' deterministic drive, concurrent with the storm.
	for round := 0; round < pipelineRounds; round++ {
		for _, name := range []string{leakdSiblingA, leakdSiblingB} {
			if _, err := s.RunRequest(name, 2); err != nil {
				return nil, rec, fmt.Errorf("round %d: sibling %s: %w", round, name, err)
			}
		}
		res := s.ProbeBudget()
		if res.Evicted != "" {
			rec.Evictions++
		}
	}
	wg.Wait()
	if ok == 0 {
		return nil, rec, fmt.Errorf("storm produced no successful victim requests (%d failed)", failed)
	}
	rec.Iterations = int(ok)

	// The audit half of the oracle: every GC in the victim re-proved the
	// heap invariants with the storm in flight.
	vt := s.Tenant("victim")
	if vt == nil {
		return nil, rec, fmt.Errorf("victim missing at end of run")
	}
	vst := vt.Status()
	rec.AuditsRun = vst.AuditsRun
	rec.AuditViolations = vst.AuditViolations

	hashes := map[string][]uint64{}
	for _, name := range []string{leakdSiblingA, leakdSiblingB} {
		tn := s.Tenant(name)
		if tn == nil {
			return nil, rec, fmt.Errorf("sibling %s missing at end of run", name)
		}
		hashes[name] = tn.CycleHashes()
		if len(hashes[name]) == 0 {
			return nil, rec, fmt.Errorf("sibling %s ran no collections; the hash oracle is vacuous", name)
		}
	}

	srep, serr := s.Shutdown()
	if srep != nil {
		for _, n := range srep.AuditViolations {
			rec.AuditViolations += uint64(n)
		}
	}
	if serr != nil {
		return nil, rec, fmt.Errorf("shutdown: %w", serr)
	}
	rec.Reason = "storm-complete"
	return hashes, rec, nil
}

// runPipelineIsolation drives the scenario across seeds against one
// serial-victim control.
func runPipelineIsolation(seeds int, verbose bool) []runRecord {
	if seeds > 3 {
		seeds = 3 // each cell is a full storm campaign; seeds vary only the mix
	}
	var recs []runRecord
	controlHashes, controlRec, err := pipelineCell(1, false)
	if err != nil {
		return []runRecord{{Workload: "multi-tenant", Scenario: "pipeline-isolation-control",
			Seed: 1, Escape: err.Error()}}
	}
	controlRec.Scenario = "pipeline-isolation-control"
	if controlRec.AuditsRun == 0 {
		controlRec.EquivalenceMismatch = "control victim ran no audits; AuditEveryGC did not arm"
	}
	for seed := uint64(1); seed <= uint64(seeds); seed++ {
		t0 := time.Now()
		hashes, rec, err := pipelineCell(seed, true)
		rec.DurationMs = float64(time.Since(t0).Microseconds()) / 1000
		if err != nil {
			rec.Escape = err.Error()
			recs = append(recs, rec)
			continue
		}
		if rec.AuditsRun == 0 {
			rec.EquivalenceMismatch = "pipelined victim ran no audits; the concurrency oracle is vacuous"
		}
		for _, sib := range []string{leakdSiblingA, leakdSiblingB} {
			if mismatch := compareHashes(sib, hashes[sib], controlHashes[sib]); mismatch != "" {
				rec.EquivalenceMismatch = mismatch
				break
			}
		}
		if verbose {
			fmt.Printf("%-20s %-10s seed %2d: %d requests ok, audits=%d violations=%d\n",
				"pipeline-isolation", "daemon", seed, rec.Iterations, rec.AuditsRun, rec.AuditViolations)
		}
		recs = append(recs, rec)
	}
	recs = append(recs, controlRec)
	return recs
}
