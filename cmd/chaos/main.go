// Command chaos runs the fault-injection campaign: every §6 micro-leak
// workload under a matrix of injected-fault scenarios across many seeds,
// with the full heap invariant audit enabled after every collection. It is
// the repo's end-to-end robustness oracle:
//
//   - no run may report an invariant-audit violation;
//   - no run may end with anything but a typed VM error (raw panics
//     escaping the VM API fail the harness and are counted as escapes);
//   - scenarios whose faults are semantics-preserving (recovered trace
//     worker panics, watchdog-forced serial fallback) must reproduce the
//     fault-free control run's iteration count and end reason exactly.
//
// Usage:
//
//	go run ./cmd/chaos -seeds 20 -o results/CHAOS_report.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"leakpruning/internal/faultinject"
	"leakpruning/internal/harness"
	"leakpruning/internal/obs"
)

// scenario is one cell of the fault matrix: which points fire, at what
// probability, under which runtime configuration.
type scenario struct {
	name    string
	arms    map[faultinject.Point]float64
	workers int  // tracer parallelism (parallel-only faults need > 1)
	melt    bool // run the disk-offload baseline instead of pruning
	// worldLock overrides the mutator/collector protocol ("" = safepoint).
	worldLock string
	// markMode overrides the ModeNormal closure strategy ("" = stw).
	markMode string
	// equivalent marks faults the degradation machinery must hide
	// completely: the run is required to match the control bit-for-bit in
	// iterations and end reason.
	equivalent bool
	// hashCheck strengthens equivalence to per-cycle granularity: the run
	// records a live-set hash plus SELECT/PRUNE decision counts inside
	// every collection's final pause, and each cycle must match the
	// fully-STW fault-free control cycle-for-cycle. Workers must be 1:
	// stale-byte attribution is claim-order dependent across workers.
	hashCheck bool
}

func scenarios() []scenario {
	all := map[faultinject.Point]float64{
		faultinject.TraceWorkerPanic:        0.02,
		faultinject.TraceWatchdogTrip:       0.01,
		faultinject.ShardFreeListCorruption: 0.02,
		faultinject.AllocLimitRace:          0.01,
		faultinject.FinalizerPanic:          0.5,
		faultinject.EdgeTableOverflow:       0.05,
		faultinject.SafepointStall:          0.05,
	}
	return []scenario{
		{name: "control", workers: 4},
		{name: "trace-panic", workers: 4, equivalent: true,
			arms: map[faultinject.Point]float64{faultinject.TraceWorkerPanic: 0.05}},
		{name: "watchdog-trip", workers: 4, equivalent: true,
			arms: map[faultinject.Point]float64{faultinject.TraceWatchdogTrip: 0.05}},
		{name: "freelist-corruption", workers: 1,
			arms: map[faultinject.Point]float64{faultinject.ShardFreeListCorruption: 0.05}},
		{name: "alloc-limit-race", workers: 1,
			arms: map[faultinject.Point]float64{faultinject.AllocLimitRace: 0.02}},
		{name: "finalizer-panic", workers: 1,
			arms: map[faultinject.Point]float64{faultinject.FinalizerPanic: 0.8}},
		{name: "edge-overflow", workers: 1,
			arms: map[faultinject.Point]float64{faultinject.EdgeTableOverflow: 0.2}},
		{name: "offload-io", workers: 1, melt: true,
			arms: map[faultinject.Point]float64{
				faultinject.OffloadWriteFault: 0.05,
				faultinject.OffloadReadFault:  0.02,
			}},
		// Stretch the safepoint ragged barrier on both sides (collector slow
		// to observe the stop, mutators slow to park). The delays are
		// semantics-free, so the run must match the fault-free control.
		{name: "safepoint-stall", workers: 4, equivalent: true,
			arms: map[faultinject.Point]float64{faultinject.SafepointStall: 0.2}},
		// The legacy world RWMutex with no faults armed: the protocol choice
		// must be invisible, so this too must match the safepoint control.
		{name: "world-rwmutex", workers: 4, worldLock: "rwmutex", equivalent: true},
		// Mostly-concurrent marking, fault-free: the mark mode must be
		// invisible to program semantics (identical iterations, end reason,
		// and per-collection audits against the fully-STW control).
		{name: "concurrent-mark", workers: 2, markMode: "concurrent", equivalent: true},
		// Concurrent marking with SATB buffer loss injected: every detected
		// drop must degrade the remark to a fresh fully-STW closure that
		// reproduces the control's live sets exactly.
		{name: "concurrent-satb-drop", workers: 2, markMode: "concurrent", equivalent: true,
			arms: map[faultinject.Point]float64{faultinject.SATBBarrierDrop: 0.5}},
		// A remark pause that is slow to finish: semantics-free delay, so the
		// run must still match the control bit-for-bit.
		{name: "concurrent-remark-stall", workers: 2, markMode: "concurrent", equivalent: true,
			arms: map[faultinject.Point]float64{faultinject.RemarkStall: 0.5}},
		// Concurrent SELECT/PRUNE against the frozen staleness snapshot:
		// every cycle mode runs mostly-concurrently, with the PRUNE
		// final-remark stall fault armed on every draw (semantics-free
		// delay). Per-cycle live-set hashes, candidate counts, and prune
		// decisions must match the fully-STW control byte-for-byte.
		{name: "concurrent-select", workers: 1, markMode: "concurrent",
			equivalent: true, hashCheck: true,
			arms: map[faultinject.Point]float64{faultinject.PruneRemarkStall: 1.0}},
		// Unresolvable snapshot drift injected on every SELECT/PRUNE final
		// remark (plus the stall): every such cycle must bump the epoch and
		// degrade to the serial STW closure, reproducing the oracle's live
		// sets and prune decisions exactly.
		{name: "concurrent-prune-degrade", workers: 1, markMode: "concurrent",
			equivalent: true, hashCheck: true,
			arms: map[faultinject.Point]float64{
				faultinject.SelectSnapshotDrift: 1.0,
				faultinject.PruneRemarkStall:    1.0,
			}},
		{name: "everything", workers: 4, arms: all},
	}
}

type runRecord struct {
	Workload   string  `json:"workload"`
	Scenario   string  `json:"scenario"`
	Seed       uint64  `json:"seed"`
	Iterations int     `json:"iterations"`
	Reason     string  `json:"reason"`
	DurationMs float64 `json:"duration_ms"`

	Collections          uint64 `json:"collections"`
	DegradedTraces       uint64 `json:"degraded_traces"`
	RecoveredTracePanics uint64 `json:"recovered_trace_panics"`
	WatchdogAborts       uint64 `json:"watchdog_aborts"`
	FinalizerPanics      uint64 `json:"finalizer_panics"`
	FreeListRepairs      uint64 `json:"free_list_repairs"`
	EdgeTableOverflows   uint64 `json:"edge_table_overflows"`
	PrunedEdgeOverflows  uint64 `json:"pruned_edge_overflows"`
	KeptInHeap           uint64 `json:"kept_in_heap,omitempty"`
	ReadAborts           uint64 `json:"read_aborts,omitempty"`

	AuditsRun       uint64   `json:"audits_run"`
	AuditViolations uint64   `json:"audit_violations"`
	Violations      []string `json:"violations,omitempty"`

	// Daemon (leakd-*) scenarios only.
	Evictions   uint64 `json:"evictions,omitempty"`
	Quarantines uint64 `json:"quarantines,omitempty"`

	// HashCheckedCycles counts the collections whose live-set hashes and
	// SELECT/PRUNE decisions were compared against the STW control
	// (hash-check scenarios only).
	HashCheckedCycles int `json:"hash_checked_cycles,omitempty"`

	Escape              string `json:"escape,omitempty"`
	EquivalenceMismatch string `json:"equivalence_mismatch,omitempty"`
}

type report struct {
	Seeds     int      `json:"seeds"`
	Workloads []string `json:"workloads"`
	Scenarios []string `json:"scenarios"`
	MaxIters  int      `json:"max_iters"`
	HeapLimit uint64   `json:"heap_limit"`

	TotalRuns             int         `json:"total_runs"`
	TotalCollections      uint64      `json:"total_collections"`
	TotalDegradedTraces   uint64      `json:"total_degraded_traces"`
	TotalFaultRecoveries  uint64      `json:"total_fault_recoveries"`
	AuditViolationRuns    int         `json:"audit_violation_runs"`
	EscapeRuns            int         `json:"escape_runs"`
	EquivalenceMismatches int         `json:"equivalence_mismatches"`
	OK                    bool        `json:"ok"`
	Runs                  []runRecord `json:"runs"`
}

func main() {
	seeds := flag.Int("seeds", 20, "seeds per (workload, scenario) cell")
	workloadsFlag := flag.String("workloads", "listleak,swapleak,dualleak",
		"comma-separated workload names")
	iters := flag.Int("iters", 3000, "iteration cap per run")
	heapLimit := flag.Uint64("heap", 1<<20, "simulated heap bytes per run")
	out := flag.String("o", "results/CHAOS_report.json", "report path")
	obsDir := flag.String("obs-dir", "", "write trace/metrics artifacts for the seed-1 control and everything runs (empty = off)")
	verbose := flag.Bool("v", false, "log every run")
	flag.Parse()

	workloads := strings.Split(*workloadsFlag, ",")
	scens := scenarios()
	rep := report{
		Seeds:     *seeds,
		Workloads: workloads,
		MaxIters:  *iters,
		HeapLimit: *heapLimit,
	}
	for _, s := range scens {
		rep.Scenarios = append(rep.Scenarios, s.name)
	}
	rep.Scenarios = append(rep.Scenarios, leakdScenarioNames()...)
	rep.Scenarios = append(rep.Scenarios, traceReplayScenarioNames()...)

	start := time.Now()
	// Fault-free control runs, one per (workload, workers[, hash]) shape,
	// are the equivalence oracle for the semantics-preserving scenarios.
	controls := map[string]harness.Result{}
	for _, s := range scens {
		if !s.equivalent {
			continue
		}
		for _, w := range workloads {
			key := controlKey(w, s)
			if _, ok := controls[key]; ok {
				continue
			}
			cfg := controlConfig(w, s.workers, *iters, *heapLimit)
			cfg.HashLiveSet = s.hashCheck
			res, err := harness.Run(cfg)
			if err != nil {
				fmt.Fprintf(os.Stderr, "chaos: control run %s failed: %v\n", key, err)
				os.Exit(1)
			}
			controls[key] = res
		}
	}

	for _, s := range scens {
		for _, w := range workloads {
			n := *seeds
			if len(s.arms) == 0 {
				n = 1 // fault-free scenario: seeds are indistinguishable
			}
			for i := 0; i < n; i++ {
				seed := uint64(i + 1)
				rec := runOne(s, w, seed, *iters, *heapLimit, *obsDir, controls)
				if *verbose {
					fmt.Printf("%-20s %-10s seed %2d: %d iters, %s (%d audits, %d degraded)\n",
						s.name, w, seed, rec.Iterations, rec.Reason, rec.AuditsRun, rec.DegradedTraces)
				}
				rep.Runs = append(rep.Runs, rec)
				rep.TotalRuns++
				rep.TotalCollections += rec.Collections
				rep.TotalDegradedTraces += rec.DegradedTraces
				rep.TotalFaultRecoveries += rec.RecoveredTracePanics + rec.FinalizerPanics + rec.FreeListRepairs
				if rec.AuditViolations > 0 {
					rep.AuditViolationRuns++
				}
				if rec.Escape != "" {
					rep.EscapeRuns++
				}
				if rec.EquivalenceMismatch != "" {
					rep.EquivalenceMismatches++
				}
			}
		}
	}

	// Daemon-level scenarios: faults in one tenant, sibling live-set hashes
	// compared byte-for-byte against a fault-free control daemon.
	for _, rec := range runLeakdScenarios(*seeds, *verbose) {
		rep.Runs = append(rep.Runs, rec)
		rep.TotalRuns++
		if rec.AuditViolations > 0 {
			rep.AuditViolationRuns++
		}
		if rec.Escape != "" {
			rep.EscapeRuns++
		}
		if rec.EquivalenceMismatch != "" {
			rep.EquivalenceMismatches++
		}
	}

	// Record/replay scenarios: each workload recorded fault-free, replayed
	// ×1 (cycle-exact against the recording) and ×4 (audit-clean).
	for _, rec := range runTraceReplayScenarios(workloads, *iters, *heapLimit, *verbose) {
		rep.Runs = append(rep.Runs, rec)
		rep.TotalRuns++
		rep.TotalCollections += rec.Collections
		if rec.AuditViolations > 0 {
			rep.AuditViolationRuns++
		}
		if rec.Escape != "" {
			rep.EscapeRuns++
		}
		if rec.EquivalenceMismatch != "" {
			rep.EquivalenceMismatches++
		}
	}

	rep.OK = rep.AuditViolationRuns == 0 && rep.EscapeRuns == 0 && rep.EquivalenceMismatches == 0
	if err := writeReport(*out, rep); err != nil {
		fmt.Fprintf(os.Stderr, "chaos: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("chaos: %d runs (%d collections, %d degraded traces, %d fault recoveries) in %v\n",
		rep.TotalRuns, rep.TotalCollections, rep.TotalDegradedTraces, rep.TotalFaultRecoveries,
		time.Since(start).Round(time.Millisecond))
	fmt.Printf("chaos: %d audit-violation runs, %d escapes, %d equivalence mismatches -> %s\n",
		rep.AuditViolationRuns, rep.EscapeRuns, rep.EquivalenceMismatches, verdict(rep.OK))
	if !rep.OK {
		os.Exit(1)
	}
}

func verdict(ok bool) string {
	if ok {
		return "OK"
	}
	return "FAIL"
}

func controlConfig(workload string, workers, iters int, heapLimit uint64) harness.Config {
	return harness.Config{
		Program:      workload,
		Policy:       "default",
		HeapLimit:    heapLimit,
		MaxIters:     iters,
		GCWorkers:    workers,
		AuditEveryGC: true,
	}
}

func runOne(s scenario, workload string, seed uint64, iters int, heapLimit uint64,
	obsDir string, controls map[string]harness.Result) runRecord {
	rec := runRecord{Workload: workload, Scenario: s.name, Seed: seed}

	cfg := controlConfig(workload, s.workers, iters, heapLimit)
	if s.melt {
		cfg.Policy = "melt"
	}
	cfg.WorldLock = s.worldLock
	cfg.MarkMode = s.markMode
	cfg.HashLiveSet = s.hashCheck
	if len(s.arms) > 0 {
		inj := faultinject.New(seed)
		for p, prob := range s.arms {
			inj.Arm(p, prob)
		}
		cfg.Injector = inj
	}
	// Artifacts for the boundary scenarios only: the clean control and the
	// all-faults run, first seed, so CI uploads a readable pair per workload
	// instead of hundreds of trace files.
	if obsDir != "" && seed == 1 && (s.name == "control" || s.name == "everything") {
		cfg.Obs = obs.New()
	}

	t0 := time.Now()
	res, err := harness.Run(cfg)
	rec.DurationMs = float64(time.Since(t0).Microseconds()) / 1000
	if cfg.Obs != nil {
		tag := fmt.Sprintf("chaos_%s_%s", s.name, workload)
		if _, _, werr := obs.WriteArtifacts(cfg.Obs, obsDir, tag); werr != nil {
			fmt.Fprintf(os.Stderr, "chaos: obs artifacts for %s: %v\n", tag, werr)
		}
	}
	if err != nil {
		// The harness only errors on non-typed failures: a raw panic or an
		// unclassified error escaped the VM API.
		rec.Escape = err.Error()
		return rec
	}

	rec.Iterations = res.Iterations
	rec.Reason = string(res.Reason)
	rec.Collections = res.VMStats.Collections
	rec.DegradedTraces = res.VMStats.DegradedTraces
	rec.RecoveredTracePanics = res.VMStats.RecoveredTracePanics
	rec.WatchdogAborts = res.VMStats.WatchdogAborts
	rec.FinalizerPanics = res.VMStats.FinalizerPanics
	rec.FreeListRepairs = res.VMStats.FreeListRepairs
	rec.EdgeTableOverflows = res.VMStats.EdgeTableOverflows
	rec.PrunedEdgeOverflows = res.VMStats.PrunedEdgeOverflows
	rec.KeptInHeap = res.Offload.KeptInHeap
	rec.ReadAborts = res.Offload.ReadAborts
	rec.AuditsRun = res.VMStats.AuditsRun
	rec.AuditViolations = res.VMStats.AuditViolations
	if res.VMStats.AuditViolations > 0 {
		rec.Violations = res.AuditReport
	}

	if s.equivalent {
		ctrl := controls[controlKey(workload, s)]
		if res.Iterations != ctrl.Iterations || res.Reason != ctrl.Reason {
			rec.EquivalenceMismatch = fmt.Sprintf(
				"got %d iterations ending %s, control ran %d ending %s",
				res.Iterations, res.Reason, ctrl.Iterations, ctrl.Reason)
		}
		if s.hashCheck && rec.EquivalenceMismatch == "" {
			rec.HashCheckedCycles = len(res.GCSamples)
			rec.EquivalenceMismatch = compareCycles(res.GCSamples, ctrl.GCSamples)
		}
	}
	return rec
}

// controlKey names the control-run cell a scenario is compared against.
// Hash-check scenarios get their own control: it carries the per-cycle
// live-set hashes (HashLiveSet) the comparison keys on.
func controlKey(workload string, s scenario) string {
	key := fmt.Sprintf("%s/%d", workload, s.workers)
	if s.hashCheck {
		key += "/hash"
	}
	return key
}

// compareCycles checks a hash-check run's per-cycle record — mode,
// post-cycle live-set hash, SELECT candidate count, PRUNE poison count —
// against the STW control's, returning a mismatch description or "".
func compareCycles(got, want []harness.GCSample) string {
	if len(got) != len(want) {
		return fmt.Sprintf("ran %d collections, control ran %d", len(got), len(want))
	}
	for i := range got {
		g, c := got[i], want[i]
		if g.Mode != c.Mode || g.LiveHash != c.LiveHash ||
			g.Candidates != c.Candidates || g.Pruned != c.Pruned {
			return fmt.Sprintf(
				"cycle %d: got (%s live=%016x cands=%d pruned=%d), control (%s live=%016x cands=%d pruned=%d)",
				i, g.Mode, g.LiveHash, g.Candidates, g.Pruned,
				c.Mode, c.LiveHash, c.Candidates, c.Pruned)
		}
	}
	return ""
}

func writeReport(path string, rep report) error {
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
