// Command phasebench measures per-phase GC costs — mark, sweep, and
// allocation ns per object — across tracer/sweeper worker counts, and
// writes the results as JSON. It seeds and refreshes BENCH_gc_phases.json,
// the repo's perf-trajectory baseline for the collector hot paths:
//
//	go run ./cmd/phasebench -o BENCH_gc_phases.json
//
// Mark is measured by re-tracing a fully-live tree heap; sweep by
// collecting a fully-garbage heap; alloc by letting N goroutines allocate
// through their own TLAB contexts. Each measurement repeats -repeat times
// and keeps the best run (least scheduler noise).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sync"
	"time"

	"leakpruning/internal/gc"
	"leakpruning/internal/heap"
)

type phaseResult struct {
	Workers       int     `json:"workers"`
	MarkNsPerObj  float64 `json:"mark_ns_per_obj"`
	SweepNsPerObj float64 `json:"sweep_ns_per_obj"`
	AllocNsPerObj float64 `json:"alloc_ns_per_obj"`
}

type report struct {
	Objects    int           `json:"objects"`
	GoMaxProcs int           `json:"gomaxprocs"`
	NumCPU     int           `json:"num_cpu"`
	Repeat     int           `json:"repeat"`
	Phases     []phaseResult `json:"phases"`
}

type rootSlice struct{ refs []heap.Ref }

func (r *rootSlice) VisitRoots(fn func(heap.Ref)) {
	for _, ref := range r.refs {
		fn(ref)
	}
}

// buildLiveHeap builds chains of n fully-reachable objects.
func buildLiveHeap(n int) (*heap.Heap, *rootSlice) {
	reg := heap.NewRegistry()
	node := reg.Define("Node", 2, 64)
	h := heap.New(reg, 1<<30)
	roots := &rootSlice{}
	const chains = 64
	per := n / chains
	for c := 0; c < chains; c++ {
		var prev heap.Ref
		for i := 0; i < per; i++ {
			r, err := h.Allocate(node)
			if err != nil {
				panic(err)
			}
			if !prev.IsNull() {
				h.Get(r).SetRef(0, prev)
				// A shortcut edge doubles the scanned slots and gives the
				// tracer's mark-word CAS real contention.
				h.Get(r).SetRef(1, prev)
			}
			prev = r
		}
		roots.refs = append(roots.refs, prev)
	}
	return h, roots
}

// buildGarbageHeap builds n unreachable chain objects.
func buildGarbageHeap(n int) (*heap.Heap, *rootSlice) {
	reg := heap.NewRegistry()
	node := reg.Define("Node", 1, 48)
	h := heap.New(reg, 1<<30)
	var prev heap.Ref
	for i := 0; i < n; i++ {
		r, err := h.Allocate(node)
		if err != nil {
			panic(err)
		}
		if !prev.IsNull() {
			h.Get(r).SetRef(0, prev)
		}
		prev = r
	}
	return h, &rootSlice{}
}

func measureMark(objects, workers, repeat int) float64 {
	h, roots := buildLiveHeap(objects)
	col := gc.NewCollector(h, roots, workers)
	best := 0.0
	for i := 0; i < repeat; i++ {
		res := col.Collect(gc.Plan{Mode: gc.ModeNormal})
		ns := float64(res.MarkDuration.Nanoseconds()) / float64(res.ObjectsLive)
		if best == 0 || ns < best {
			best = ns
		}
	}
	return best
}

func measureSweep(objects, workers, repeat int) float64 {
	best := 0.0
	for i := 0; i < repeat; i++ {
		h, roots := buildGarbageHeap(objects)
		col := gc.NewCollector(h, roots, workers)
		res := col.Collect(gc.Plan{Mode: gc.ModeNormal})
		ns := float64(res.SweepDuration.Nanoseconds()) / float64(res.ObjectsFreed)
		if best == 0 || ns < best {
			best = ns
		}
	}
	return best
}

func measureAlloc(objects, workers, repeat int) float64 {
	reg := heap.NewRegistry()
	node := reg.Define("Node", 1, 48)
	best := 0.0
	for i := 0; i < repeat; i++ {
		h := heap.New(reg, 1<<30)
		start := time.Now()
		var wg sync.WaitGroup
		for g := 0; g < workers; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				ctx := h.NewAllocContext()
				defer h.ReleaseContext(&ctx)
				for j := 0; j < objects/workers; j++ {
					if _, err := h.AllocateCtx(&ctx, node); err != nil {
						panic(err)
					}
				}
			}()
		}
		wg.Wait()
		ns := float64(time.Since(start).Nanoseconds()) / float64(objects)
		if best == 0 || ns < best {
			best = ns
		}
	}
	return best
}

func main() {
	out := flag.String("o", "BENCH_gc_phases.json", "output path ('-' for stdout)")
	objects := flag.Int("objects", 1<<17, "objects per phase heap")
	repeat := flag.Int("repeat", 3, "repetitions per measurement (best kept)")
	flag.Parse()
	if *objects < 1 || *repeat < 1 {
		fmt.Fprintln(os.Stderr, "phasebench: -objects and -repeat must be >= 1")
		os.Exit(2)
	}

	rep := report{
		Objects:    *objects,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Repeat:     *repeat,
	}
	for _, w := range []int{1, 2, 4} {
		fmt.Fprintf(os.Stderr, "phasebench: measuring workers=%d...\n", w)
		rep.Phases = append(rep.Phases, phaseResult{
			Workers:       w,
			MarkNsPerObj:  measureMark(*objects, w, *repeat),
			SweepNsPerObj: measureSweep(*objects, w, *repeat),
			AllocNsPerObj: measureAlloc(*objects, w, *repeat),
		})
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		panic(err)
	}
	data = append(data, '\n')
	if *out == "-" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "phasebench: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "phasebench: wrote %s\n", *out)
}
