// Command tracetool records, replays, summarizes, and verifies allocation
// traces (internal/trace format).
//
// Usage:
//
//	tracetool record -program listleak -policy default -iters 900 -o run.trace
//	tracetool replay -i run.trace -verify          # ×1, recorded options, cycle-exact
//	tracetool replay -i run.trace -policy most-stale -x 10
//	tracetool stat   -i run.trace
//	tracetool verify -i run.trace                  # structural validation only
//
// A ×1 replay under the recorded options reproduces the recorded run's GC
// cycles byte for byte (-verify asserts it). Replaying under a different
// policy answers "what would policy P have done on this exact heap
// history"; -x N multiplies the recorded threads into N skewed clones
// against an N×-scaled heap.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"leakpruning/internal/harness"
	"leakpruning/internal/trace"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "record":
		err = cmdRecord(os.Args[2:])
	case "replay":
		err = cmdReplay(os.Args[2:])
	case "stat":
		err = cmdStat(os.Args[2:])
	case "verify":
		err = cmdVerify(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "tracetool: unknown subcommand %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "tracetool: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage: tracetool <record|replay|stat|verify> [flags]

  record  run a workload with the trace recorder attached and write the trace
  replay  re-execute a trace (optionally under a different policy, ×N threads)
  stat    print the trace header and event-count summary
  verify  structurally validate every event (typed errors, exit 1 on corruption)

Run 'tracetool <subcommand> -h' for flags.
`)
}

func cmdRecord(args []string) error {
	fs := flag.NewFlagSet("record", flag.ExitOnError)
	var (
		program   = fs.String("program", "listleak", "workload to record (see leakbench -list)")
		policy    = fs.String("policy", "default", "pruning policy: off, default, most-stale, indiv-refs, melt")
		iters     = fs.Int("iters", 900, "iteration cap")
		heapMB    = fs.Int("heap", 0, "heap limit in MiB (0 = program default)")
		worldLock = fs.String("world-lock", "", "safepoint or rwmutex (default safepoint)")
		markMode  = fs.String("mark-mode", "", "stw or concurrent (default stw)")
		hashLive  = fs.Bool("hash-live", true, "record per-cycle live-set hashes (the replay equivalence anchor)")
		out       = fs.String("o", "run.trace", "output trace path")
	)
	fs.Parse(args)

	rec := trace.NewRecorder()
	res, err := harness.Run(harness.Config{
		Program:     *program,
		Policy:      *policy,
		HeapLimit:   uint64(*heapMB) << 20,
		MaxIters:    *iters,
		WorldLock:   *worldLock,
		MarkMode:    *markMode,
		HashLiveSet: *hashLive,
		Record:      rec,
	})
	if err != nil {
		return err
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	n, werr := rec.WriteTo(f)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		return werr
	}
	fmt.Printf("recorded %s/%s: %d iterations, ended %s\n", *program, *policy, res.Iterations, res.Reason)
	fmt.Printf("wrote %s (%d bytes, %d GC cycles)\n", *out, n, len(res.GCSamples))
	return nil
}

func readTraceFile(path string) (*trace.Trace, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return trace.ReadTrace(data)
}

func cmdReplay(args []string) error {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	var (
		in        = fs.String("i", "run.trace", "input trace path")
		policy    = fs.String("policy", "", "override the recorded pruning policy (empty = recorded)")
		mult      = fs.Int("x", 1, "thread multiplication: N skewed clones on an N×-scaled heap")
		speed     = fs.Float64("speed", 0, "pace against recorded timestamps (1 = recorded, 0 = flat out)")
		stagger   = fs.Duration("stagger", 0, "delay clone k's start by k×stagger")
		worldLock = fs.String("world-lock", "", "override the recorded world lock")
		markMode  = fs.String("mark-mode", "", "override the recorded mark mode")
		verify    = fs.Bool("verify", false, "require cycle-exact equivalence with the recording (×1, recorded options)")
		verbose   = fs.Bool("v", false, "per-clone detail")
	)
	fs.Parse(args)

	tr, err := readTraceFile(*in)
	if err != nil {
		return err
	}
	rr, err := harness.Replay(harness.ReplayConfig{
		Trace:     tr,
		Policy:    *policy,
		WorldLock: *worldLock,
		MarkMode:  *markMode,
		Multiply:  *mult,
		Speed:     *speed,
		Stagger:   *stagger,
	})
	if err != nil {
		return err
	}
	fmt.Printf("replayed %s under %s: ×%d, heap %d MiB, %d GC cycles, %v\n",
		rr.Program, rr.Policy, rr.Multiply, rr.HeapLimit>>20, len(rr.GCSamples),
		rr.Duration.Round(time.Millisecond))
	failed := 0
	for _, c := range rr.Clones {
		if *verbose || c.Err != nil || c.Skipped > 0 {
			fmt.Printf("  clone %d: %d iterations, %s", c.Clone, c.Iterations, c.Reason)
			if c.Skipped > 0 {
				fmt.Printf(" (%d events skipped)", c.Skipped)
			}
			if c.Err != nil {
				fmt.Printf(" — %v", c.Err)
			}
			fmt.Println()
		}
		if c.Reason == harness.EndReplayDiverged || c.Reason == harness.EndTraceCorrupt {
			failed++
		}
	}
	if len(rr.Prunes) > 0 {
		fmt.Printf("  %d prune events\n", len(rr.Prunes))
	}
	for _, v := range rr.AuditReport {
		fmt.Printf("  AUDIT VIOLATION: %s\n", v)
	}
	if *verify {
		if err := harness.CompareCycles(tr, rr.GCSamples); err != nil {
			return fmt.Errorf("equivalence: %w", err)
		}
		fmt.Printf("  equivalence: %d cycles byte-identical to the recording\n", len(rr.GCSamples))
	}
	if failed > 0 {
		return fmt.Errorf("%d clone(s) failed structurally", failed)
	}
	if len(rr.AuditReport) > 0 {
		return fmt.Errorf("%d audit violation(s)", len(rr.AuditReport))
	}
	return nil
}

func cmdStat(args []string) error {
	fs := flag.NewFlagSet("stat", flag.ExitOnError)
	in := fs.String("i", "run.trace", "input trace path")
	fs.Parse(args)

	tr, err := readTraceFile(*in)
	if err != nil {
		return err
	}
	st, err := tr.Stats()
	if err != nil {
		return err
	}
	m := tr.Meta
	fmt.Printf("program      %s\n", m.Program)
	fmt.Printf("policy       %s (world-lock %s, mark-mode %s, barriers %s)\n",
		m.Policy, m.WorldLock, m.MarkMode, m.BarrierVariant)
	fmt.Printf("heap limit   %d bytes\n", m.HeapLimit)
	fmt.Printf("flags        %#x  fingerprint %#x\n", m.Flags, m.Fingerprint)
	fmt.Printf("classes      %d   globals %d   threads %d\n", len(tr.Classes), tr.Globals, len(tr.Threads))
	fmt.Printf("events       %d in %d bytes (%.2f bytes/event)\n", st.Events, st.Bytes, st.PerEvent)
	fmt.Printf("gc cycles    %d   max iteration %d\n", len(st.Cycles), st.MaxIter)
	for k := trace.Kind(0); int(k) < len(st.ByKind); k++ {
		if st.ByKind[k] > 0 {
			fmt.Printf("  %-18s %d\n", k, st.ByKind[k])
		}
	}
	return nil
}

func cmdVerify(args []string) error {
	fs := flag.NewFlagSet("verify", flag.ExitOnError)
	in := fs.String("i", "run.trace", "input trace path")
	fs.Parse(args)

	tr, err := readTraceFile(*in)
	if err != nil {
		return err
	}
	n, err := tr.Validate()
	if err != nil {
		return fmt.Errorf("after %d events: %w", n, err)
	}
	fmt.Printf("ok: %d events, %d classes, %d threads, %d globals\n",
		n, len(tr.Classes), len(tr.Threads), tr.Globals)
	return nil
}
