// Command mutbench measures mutator fast-path costs — Load, Store, and New
// ns per operation — across barrier settings, mutator thread counts, and
// both world-lock protocols (safepoint vs the legacy RWMutex), and writes
// the results as JSON. It seeds and refreshes BENCH_mutator_ops.json, the
// repo's perf-trajectory baseline for the mutator hot paths:
//
//	go run ./cmd/mutbench -o BENCH_mutator_ops.json
//
// The report embeds the pre-safepoint baseline (measured on the per-op
// RWMutex implementation before the protocol change) so the JSON alone
// answers "what did killing the world lock buy": compare the baseline rows
// against the matching world=safepoint rows. Each measurement repeats
// -repeat times and keeps the best run (least scheduler noise).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sync"
	"time"

	"leakpruning/internal/jitsim"
	"leakpruning/internal/obs"
	"leakpruning/internal/vm"
)

// baselineRow is one pre-change measurement, kept verbatim in the report.
type baselineRow struct {
	Op       string  `json:"op"`
	Barriers bool    `json:"barriers"`
	Threads  int     `json:"threads"`
	NsPerOp  float64 `json:"ns_per_op"`
}

// preSafepointBaseline is the anchor the safepoint work is judged against:
// single-threaded ns/op measured at commit 7e6e94e (per-operation world
// RWMutex, per-op deferred unlock, global atomic counters, uncached
// heap.Get) on the same class/object shapes benchMutatorOp uses, on an
// Intel Xeon @ 2.10GHz. Do not regenerate these with current code — they
// exist precisely because the code they measured is gone.
var preSafepointBaseline = []baselineRow{
	{Op: "load", Barriers: false, Threads: 1, NsPerOp: 36.8},
	{Op: "load", Barriers: true, Threads: 1, NsPerOp: 35.7},
	{Op: "store", Barriers: true, Threads: 1, NsPerOp: 24.4},
	{Op: "new", Barriers: true, Threads: 1, NsPerOp: 230},
}

type resultRow struct {
	Op       string  `json:"op"`
	Barriers bool    `json:"barriers"`
	World    string  `json:"world"`
	Obs      bool    `json:"obs"`
	Threads  int     `json:"threads"`
	NsPerOp  float64 `json:"ns_per_op"`
}

// jitElisionModel projects the measured load costs through the tier-1
// barrier-elision ratio jitsim's tiered replay achieves: a load whose
// barrier was elided pays the barriers-off cost, the rest pay the full
// barriers-on cost, so the modelled steady-state load is
// off + (1-ratio)*(on-off). The ratio is recomputed here, not pasted, so
// the report tracks the analysis as it evolves.
type jitElisionModel struct {
	DynElisionRatio    float64 `json:"dyn_elision_ratio"`
	LoadBarriersOffNs  float64 `json:"load_barriers_off_ns"`
	LoadBarriersOnNs   float64 `json:"load_barriers_on_ns"`
	ModelledLoadNs     float64 `json:"modelled_load_ns_after_elision"`
	ModelledSpeedupPct float64 `json:"modelled_mutator_speedup_pct"`
	ReferenceRow       string  `json:"reference_row"`
}

type report struct {
	OpsPerThread int    `json:"ops_per_thread"`
	GoMaxProcs   int    `json:"gomaxprocs"`
	NumCPU       int    `json:"num_cpu"`
	Repeat       int    `json:"repeat"`
	BaselineNote string `json:"baseline_note"`
	// Baseline holds the pre-safepoint measurements (see preSafepointBaseline).
	Baseline []baselineRow `json:"baseline_pre_safepoint"`
	Results  []resultRow   `json:"results"`
	// JitElision projects the measured load rows through tier-1 elision.
	JitElision *jitElisionModel `json:"jit_elision"`
}

// measure runs `ops` operations of kind op on each of `threads` mutator
// threads and returns ns per operation for the whole run.
func measure(mode vm.WorldLockMode, barriers, obsOn bool, op string, threads, ops int) float64 {
	var o *obs.Obs
	if obsOn {
		o = obs.New()
	}
	v := vm.New(vm.Options{
		HeapLimit:      32 << 20,
		EnableBarriers: barriers,
		GCWorkers:      1,
		WorldLock:      mode,
		Obs:            o,
	})
	node := v.DefineClass("Node", 1, 0)
	scratch := v.DefineClass("Scratch", 0, 64)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < threads; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			err := v.RunThread("mutbench", func(t *vm.Thread) {
				a := t.New(node)
				t.Store(a, 0, t.New(node))
				switch op {
				case "load":
					for i := 0; i < ops; i += 64 {
						t.Scope(func() {
							for j := 0; j < 64; j++ {
								t.Load(a, 0)
							}
						})
					}
				case "store":
					tgt := t.Load(a, 0)
					for i := 0; i < ops; i += 64 {
						t.Scope(func() {
							for j := 0; j < 64; j++ {
								t.Store(a, 0, tgt)
							}
						})
					}
				case "new":
					for i := 0; i < ops; i += 64 {
						t.Scope(func() {
							for j := 0; j < 64; j++ {
								t.New(scratch)
							}
						})
					}
				}
			})
			if err != nil {
				panic(fmt.Sprintf("mutbench %s: %v", op, err))
			}
		}()
	}
	wg.Wait()
	return float64(time.Since(start).Nanoseconds()) / float64(ops*threads)
}

// elisionModel computes the jit-elision projection from the measured rows.
// The reference rows are the cleanest pair: single-threaded loads under the
// safepoint protocol with observability off.
func elisionModel(rows []resultRow) *jitElisionModel {
	var off, on float64
	for _, r := range rows {
		if r.Op == "load" && r.World == "safepoint" && !r.Obs && r.Threads == 1 {
			if r.Barriers {
				on = r.NsPerOp
			} else {
				off = r.NsPerOp
			}
		}
	}
	if off == 0 || on == 0 || on <= off {
		return nil // barrier surcharge not resolvable from this run's noise
	}
	corpus := jitsim.Corpus("mutbench", 40, 300)
	rr := jitsim.Replay(&jitsim.Compiler{InsertReadBarriers: true, HotThreshold: 2}, corpus, 2)
	if rr.DynTestsTier0 == 0 {
		return nil
	}
	ratio := 1 - float64(rr.DynTestsTier1)/float64(rr.DynTestsTier0)
	modelled := off + (1-ratio)*(on-off)
	return &jitElisionModel{
		DynElisionRatio:    ratio,
		LoadBarriersOffNs:  off,
		LoadBarriersOnNs:   on,
		ModelledLoadNs:     modelled,
		ModelledSpeedupPct: (1 - modelled/on) * 100,
		ReferenceRow:       "op=load world=safepoint obs=false threads=1",
	}
}

func main() {
	out := flag.String("o", "BENCH_mutator_ops.json", "output path ('-' for stdout)")
	ops := flag.Int("ops", 1<<21, "operations per thread per measurement")
	repeat := flag.Int("repeat", 3, "repetitions per measurement (best kept)")
	flag.Parse()
	if *ops < 64 || *repeat < 1 {
		fmt.Fprintln(os.Stderr, "mutbench: -ops must be >= 64 and -repeat >= 1")
		os.Exit(2)
	}

	rep := report{
		OpsPerThread: *ops,
		GoMaxProcs:   runtime.GOMAXPROCS(0),
		NumCPU:       runtime.NumCPU(),
		Repeat:       *repeat,
		BaselineNote: "baseline_pre_safepoint rows were measured before the safepoint " +
			"protocol replaced the per-operation world RWMutex (commit 7e6e94e); " +
			"compare them against world=safepoint rows at the same op/barriers/threads",
		Baseline: preSafepointBaseline,
	}
	// Discarded warmup: the very first measurement of the process otherwise
	// pays one-time costs (page faults, runtime arena growth) that land
	// entirely on the matrix's first row and can invert the barrier split.
	measure(vm.WorldSafepoint, false, false, "load", 1, *ops)

	for _, op := range []string{"load", "store", "new"} {
		for _, barriers := range []bool{false, true} {
			for _, mode := range []vm.WorldLockMode{vm.WorldSafepoint, vm.WorldRWMutex} {
				for _, obsOn := range []bool{false, true} {
					for _, threads := range []int{1, 2, 4, 8} {
						best := 0.0
						for r := 0; r < *repeat; r++ {
							ns := measure(mode, barriers, obsOn, op, threads, *ops)
							if best == 0 || ns < best {
								best = ns
							}
						}
						fmt.Fprintf(os.Stderr, "mutbench: %s barriers=%v world=%s obs=%v threads=%d: %.1f ns/op\n",
							op, barriers, mode, obsOn, threads, best)
						rep.Results = append(rep.Results, resultRow{
							Op: op, Barriers: barriers, World: mode.String(), Obs: obsOn,
							Threads: threads, NsPerOp: best,
						})
					}
				}
			}
		}
	}

	rep.JitElision = elisionModel(rep.Results)

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		panic(err)
	}
	data = append(data, '\n')
	if *out == "-" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "mutbench: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "mutbench: wrote %s\n", *out)
}
