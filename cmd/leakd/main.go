// Command leakd is the multi-tenant leak-pruning daemon: it hosts N
// isolated tenant VMs (one heap, pruning policy, and fault budget each)
// behind an HTTP API, governed by a global memory budget whose pressure
// controller walks a degradation ladder — tighten pruning thresholds,
// force SELECT/PRUNE cycles, evict the worst offender — long before any
// tenant's leak can take the process down.
//
// Usage:
//
//	leakd -addr :8080 -budget 8 -tenants good:antlr:default,leak:listleak:off
//	leakd -demo                      # 4-tenant demo workload, self-driven
//	leakd -smoke                     # CI smoke: drive, scrape, assert, exit
//	leakd -soak -duration 60s        # budget-holding soak (one leaky tenant)
//
// Endpooints: GET /healthz, /readyz, /metrics (Prometheus or JSON),
// /tenants, /pressure; POST /tenants (admit), /tenants/{name}/run?iters=N,
// /tenants/{name}/config (rolling update); DELETE /tenants/{name} (evict).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"leakpruning/internal/obs"
	"leakpruning/internal/server"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:8080", "HTTP listen address")
		budgetMB = flag.Float64("budget", 4, "global resident budget in MiB")
		tenants  = flag.String("tenants", "", "comma-separated name:workload:policy[:heapKiB] tenants to admit at boot")
		probe    = flag.Duration("probe", 250*time.Millisecond, "budget probe interval")
		duration = flag.Duration("duration", 0, "self-drive the tenants for this long, then shut down (0 = serve forever)")
		demo     = flag.Bool("demo", false, "run the 4-tenant demo mix and self-drive until -duration (default 20s)")
		smoke    = flag.Bool("smoke", false, "CI smoke: demo mix, drive until an eviction, scrape /metrics, assert, exit")
		soak     = flag.Bool("soak", false, "soak: 4 tenants (one leaky), assert resident <= budget on every probe for -duration")
		verbose  = flag.Bool("v", false, "log daemon events")
	)
	flag.Parse()

	budget := uint64(*budgetMB * float64(1<<20))
	cfg := server.Config{
		Budget:        budget,
		ProbeInterval: *probe,
		Obs:           obs.New(),
	}
	if *verbose || *smoke || *soak {
		cfg.Logf = log.Printf
	}
	if *smoke || *soak {
		// Driven modes probe manually so every ladder transition is
		// deterministic and observable between requests.
		cfg.ProbeInterval = 0
	}

	s, err := server.New(cfg)
	if err != nil {
		log.Fatalf("leakd: %v", err)
	}

	specs := *tenants
	if *demo || *smoke || *soak {
		// One leaky tenant with pruning off (only the ladder can save the
		// budget), one tolerated leak being pruned, two steady services.
		quarter := budget / 4
		specs = fmt.Sprintf(
			"leaky:listleak:off:%d,pruned:listleak:default:%d,svc-a:antlr:off:%d,svc-b:fop:off:%d",
			budget>>10, quarter>>10, quarter>>10, quarter>>10)
	}
	boot, err := parseTenants(specs)
	if err != nil {
		log.Fatalf("leakd: -tenants: %v", err)
	}
	for _, tc := range boot {
		if _, err := s.Admit(tc); err != nil {
			log.Fatalf("leakd: admit %s: %v", tc.Name, err)
		}
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("leakd: listen %s: %v", *addr, err)
	}
	hs := &http.Server{Handler: s.Handler()}
	httpDone := make(chan error, 1)
	go func() { httpDone <- hs.Serve(ln) }()
	base := "http://" + ln.Addr().String()
	log.Printf("leakd: serving %d tenants on %s (budget %d bytes)", len(boot), base, budget)

	exit := 0
	switch {
	case *smoke:
		exit = runSmoke(s, base)
	case *soak:
		d := *duration
		if d == 0 {
			d = 60 * time.Second
		}
		exit = runSoak(s, base, d)
	case *demo || *duration > 0:
		d := *duration
		if d == 0 {
			d = 20 * time.Second
		}
		drive(s, d, nil)
	default:
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		log.Printf("leakd: signal received, draining")
	}

	rep, err := s.Shutdown()
	if err != nil {
		log.Printf("leakd: shutdown: %v", err)
		exit = 1
	}
	if rep != nil {
		out, _ := json.Marshal(rep)
		log.Printf("leakd: shutdown report: %s", out)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	_ = hs.Shutdown(ctx)
	<-httpDone
	os.Exit(exit)
}

// parseTenants parses "name:workload:policy[:heapKiB]" specs.
func parseTenants(specs string) ([]server.TenantConfig, error) {
	var out []server.TenantConfig
	if specs == "" {
		return out, nil
	}
	for _, spec := range strings.Split(specs, ",") {
		parts := strings.Split(strings.TrimSpace(spec), ":")
		if len(parts) < 3 || len(parts) > 4 {
			return nil, fmt.Errorf("bad tenant spec %q (want name:workload:policy[:heapKiB])", spec)
		}
		tc := server.TenantConfig{Name: parts[0], Workload: parts[1], Policy: parts[2], HeapLimit: 512 << 10}
		if len(parts) == 4 {
			kib, err := strconv.ParseUint(parts[3], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("bad heap size in %q: %v", spec, err)
			}
			tc.HeapLimit = kib << 10
		}
		out = append(out, tc)
	}
	return out, nil
}

// drive round-robins requests across the daemon's tenants for d, probing
// the budget between rounds. Tenant faults (traps, restarts) are expected
// traffic, not driver errors. onProbe, when set, sees every probe result.
func drive(s *server.Server, d time.Duration, onProbe func(server.ProbeResult) error) error {
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		for _, st := range s.Tenants() {
			if st.State != "serving" {
				continue
			}
			_, _ = s.RunRequest(st.Name, 2)
		}
		res := s.ProbeBudget()
		if onProbe != nil {
			if err := onProbe(res); err != nil {
				return err
			}
		}
	}
	return nil
}

// runSmoke is the CI gate behind `make leakd-smoke`: drive the demo mix
// until the ladder evicts the leaky tenant, then scrape the daemon's own
// /metrics and /healthz over HTTP and assert the advertised counters.
func runSmoke(s *server.Server, base string) int {
	fail := func(format string, args ...any) int {
		log.Printf("SMOKE FAIL: "+format, args...)
		return 1
	}
	sawEvict := false
	deadline := time.Now().Add(30 * time.Second)
	for !sawEvict && time.Now().Before(deadline) {
		for _, st := range s.Tenants() {
			if st.State == "serving" {
				_, _ = s.RunRequest(st.Name, 2)
			}
		}
		if res := s.ProbeBudget(); res.Evicted != "" {
			log.Printf("leakd: smoke saw eviction of %s at level %d (%.0f%% of budget)",
				res.Evicted, res.Level, 100*res.Fraction)
			sawEvict = true
		}
	}
	if !sawEvict {
		return fail("no eviction within 30s of driving the demo mix")
	}

	metrics, err := get(base + "/metrics")
	if err != nil {
		return fail("scrape /metrics: %v", err)
	}
	for _, want := range []string{
		"lp_tenant_evictions_total 1",
		"lp_budget_pressure_level",
		"lp_resident_bytes",
		"lp_requests_total{outcome=\"ok\"}",
	} {
		if !strings.Contains(metrics, want) {
			return fail("/metrics missing %q", want)
		}
	}
	health, err := get(base + "/healthz")
	if err != nil || !strings.Contains(health, "ok") {
		return fail("/healthz = %q, %v", health, err)
	}
	ready, err := get(base + "/readyz")
	if err != nil || !strings.Contains(ready, "ready") {
		return fail("/readyz = %q, %v", ready, err)
	}
	log.Printf("leakd: smoke ok (eviction observed, metrics and health verified)")
	return 0
}

// runSoak drives the demo mix for d and asserts the budget controller's
// core promise on every probe: resident bytes never exceed the budget,
// with the ladder doing the holding (transitions visible as obs counters).
func runSoak(s *server.Server, base string, d time.Duration) int {
	var probes, overBudget, evictions int
	maxLevel := 0
	err := drive(s, d, func(res server.ProbeResult) error {
		probes++
		if res.Resident > s.Budget() {
			overBudget++
			return fmt.Errorf("resident %d exceeded budget %d at probe %d", res.Resident, s.Budget(), probes)
		}
		if res.Level > maxLevel {
			maxLevel = res.Level
		}
		if res.Evicted != "" {
			evictions++
		}
		// Keep a leaky tenant in the mix so pressure cycles for the whole
		// soak. Admission is refused at ladder level 3, so the replacement
		// lands on the first probe after pressure clears.
		hasLeaky := false
		for _, st := range s.Tenants() {
			if strings.HasPrefix(st.Name, "leaky") {
				hasLeaky = true
				break
			}
		}
		if !hasLeaky && res.Level < 3 {
			_, _ = s.Admit(server.TenantConfig{
				Name:      fmt.Sprintf("leaky-%d", evictions),
				Workload:  "listleak",
				Policy:    "off",
				HeapLimit: s.Budget(),
			})
		}
		return nil
	})
	if err != nil {
		log.Printf("SOAK FAIL: %v", err)
		return 1
	}
	if maxLevel < 3 || evictions == 0 {
		log.Printf("SOAK FAIL: ladder never reached eviction (max level %d, %d evictions in %d probes)",
			maxLevel, evictions, probes)
		return 1
	}
	metrics, gerr := get(base + "/metrics")
	if gerr != nil || !strings.Contains(metrics, "lp_tenant_evictions_total") {
		log.Printf("SOAK FAIL: /metrics scrape: %v", gerr)
		return 1
	}
	// The "pruned" tenant runs the default pruning policy, so a full soak
	// must have driven normal, SELECT, and PRUNE cycles; /pressure's
	// per-mode worst-case pauses are the operator's view of that.
	pressure, gerr := get(base + "/pressure")
	if gerr != nil {
		log.Printf("SOAK FAIL: /pressure scrape: %v", gerr)
		return 1
	}
	var pr struct {
		MaxPauseByMode map[string]int64             `json:"max_pause_ns_by_mode"`
		LatencyByLevel map[string]server.LatencySLO `json:"request_latency_by_level"`
	}
	if jerr := json.Unmarshal([]byte(pressure), &pr); jerr != nil {
		log.Printf("SOAK FAIL: /pressure decode: %v", jerr)
		return 1
	}
	for _, mode := range []string{"normal", "select", "prune"} {
		if pr.MaxPauseByMode[mode] <= 0 {
			log.Printf("SOAK FAIL: /pressure max_pause_ns_by_mode[%q] = %d; every cycle mode must pause at least once",
				mode, pr.MaxPauseByMode[mode])
			return 1
		}
	}
	// The latency SLO ledger must have tracked the soak's pressure cycling:
	// serving at baseline (level 0) with a sane p99, and at least one
	// degraded ladder level with requests attributed to it — otherwise the
	// per-level breakdown is decoration, not an SLO.
	l0, ok := pr.LatencyByLevel["0"]
	if !ok || l0.Count == 0 || l0.P99Ns <= 0 {
		log.Printf("SOAK FAIL: /pressure request_latency_by_level[\"0\"] = %+v; baseline requests must be tracked", l0)
		return 1
	}
	if l0.P99Ns > int64(30*time.Second) {
		log.Printf("SOAK FAIL: level-0 request p99 %v is beyond any plausible SLO", time.Duration(l0.P99Ns))
		return 1
	}
	degraded := uint64(0)
	for level, slo := range pr.LatencyByLevel {
		if level != "0" {
			degraded += slo.Count
		}
	}
	if degraded == 0 {
		log.Printf("SOAK FAIL: no requests attributed to degraded ladder levels despite max level %d", maxLevel)
		return 1
	}
	log.Printf("leakd: soak ok — %d probes over %v, 0 over budget, max ladder level %d, %d evictions, per-mode pauses %v, level-0 p99 %v over %d requests (%d degraded-level requests)",
		probes, d, maxLevel, evictions, pr.MaxPauseByMode, time.Duration(l0.P99Ns), l0.Count, degraded)
	return 0
}

func get(url string) (string, error) {
	c := &http.Client{Timeout: 5 * time.Second}
	resp, err := c.Get(url)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return string(b), fmt.Errorf("%s: status %d", url, resp.StatusCode)
	}
	return string(b), nil
}
