// Command figures regenerates the paper's time-series figures as CSV on
// stdout (plot with any tool):
//
//	figures -fig 1    # EclipseDiff reachable memory: leak, manually fixed,
//	                  # and with leak pruning (Figure 1)
//	figures -fig 8    # EclipseDiff time per iteration, base vs. pruning
//	figures -fig 9    # EclipseCP reachable memory, base vs. pruning
//	figures -fig 10   # EclipseCP time per iteration, base vs. pruning
//	figures -fig 11   # EclipseDiff iteration times with the 100%-full
//	                  # threshold (option 1): the first prune spike is the
//	                  # tall one
//
// Reachable-memory series sample the heap at the end of every full-heap
// collection, exactly as the paper's figures do.
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"strconv"
	"time"

	"leakpruning/internal/harness"
)

func main() {
	var (
		fig      = flag.Int("fig", 1, "figure to regenerate: 1, 8, 9, 10, or 11")
		maxIters = flag.Int("max-iters", 0, "iteration cap (0 = figure-specific default)")
		timeCap  = flag.Duration("time-cap", 2*time.Minute, "wall-clock cap per run")
	)
	flag.Parse()

	w := csv.NewWriter(os.Stdout)
	defer w.Flush()

	switch *fig {
	case 1:
		iters := defaultIters(*maxIters, 2000)
		w.Write([]string{"series", "iteration", "reachable_bytes"})
		memorySeries(w, "leak", harness.Config{Program: "eclipsediff", Policy: "off", MaxIters: iters, MaxDuration: *timeCap})
		memorySeries(w, "fixed", harness.Config{Program: "eclipsediff-fixed", Policy: "off", MaxIters: iters, MaxDuration: *timeCap})
		memorySeries(w, "pruning", harness.Config{Program: "eclipsediff", Policy: "default", MaxIters: iters, MaxDuration: *timeCap})
	case 8:
		iters := defaultIters(*maxIters, 8000)
		w.Write([]string{"series", "iteration", "seconds"})
		timeSeries(w, "base", harness.Config{Program: "eclipsediff", Policy: "off", MaxIters: iters, MaxDuration: *timeCap, RecordIterTimes: true})
		timeSeries(w, "pruning", harness.Config{Program: "eclipsediff", Policy: "default", MaxIters: iters, MaxDuration: *timeCap, RecordIterTimes: true})
	case 9:
		iters := defaultIters(*maxIters, 4000)
		w.Write([]string{"series", "iteration", "reachable_bytes"})
		memorySeries(w, "base", harness.Config{Program: "eclipsecp", Policy: "off", MaxIters: iters, MaxDuration: *timeCap})
		memorySeries(w, "pruning", harness.Config{Program: "eclipsecp", Policy: "default", MaxIters: iters, MaxDuration: *timeCap})
	case 10:
		iters := defaultIters(*maxIters, 4000)
		w.Write([]string{"series", "iteration", "seconds"})
		timeSeries(w, "base", harness.Config{Program: "eclipsecp", Policy: "off", MaxIters: iters, MaxDuration: *timeCap, RecordIterTimes: true})
		timeSeries(w, "pruning", harness.Config{Program: "eclipsecp", Policy: "default", MaxIters: iters, MaxDuration: *timeCap, RecordIterTimes: true})
	case 11:
		iters := defaultIters(*maxIters, 1500)
		w.Write([]string{"series", "iteration", "seconds"})
		timeSeries(w, "pruning-100pct", harness.Config{
			Program: "eclipsediff", Policy: "default", FullHeapOnly: true,
			MaxIters: iters, MaxDuration: *timeCap, RecordIterTimes: true,
		})
	default:
		fmt.Fprintf(os.Stderr, "figures: unknown figure %d\n", *fig)
		os.Exit(2)
	}
}

func defaultIters(flagVal, def int) int {
	if flagVal > 0 {
		return flagVal
	}
	return def
}

func mustRun(cfg harness.Config) harness.Result {
	res, err := harness.Run(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "# %s\n", res.Describe())
	return res
}

// memorySeries emits reachable bytes at the end of every full-heap
// collection.
func memorySeries(w *csv.Writer, series string, cfg harness.Config) {
	res := mustRun(cfg)
	for _, s := range res.GCSamples {
		w.Write([]string{series, strconv.Itoa(s.Iteration), strconv.FormatUint(s.BytesLive, 10)})
	}
}

// timeSeries emits per-iteration wall time in seconds.
func timeSeries(w *csv.Writer, series string, cfg harness.Config) {
	res := mustRun(cfg)
	for i, d := range res.IterTimes {
		w.Write([]string{series, strconv.Itoa(i), strconv.FormatFloat(d.Seconds(), 'g', 6, 64)})
	}
}
