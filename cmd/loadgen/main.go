// Command loadgen is a wrk-style closed-loop HTTP load generator for
// leakd. It drives one benchmark tenant with C concurrent connections
// issuing a mix of small and large requests (both iterations of the
// unbounded-queue corpus leak — the large profile is exactly the kind of
// long call that starves small requests of a serial pipeline), records
// per-profile latency in an HDR-style log-linear histogram over a warmup
// plus measurement window, and runs the whole experiment twice: once
// against the serial request pipeline (the baseline) and once against the
// concurrent worker-pool pipeline. The emitted JSON therefore carries its
// own serial baseline, and the headline number is the small-request p99
// improvement — the head-of-line-blocking win the pipeline exists for.
//
// Usage:
//
//	loadgen -conns 8 -warmup 2s -duration 8s -o results/BENCH_leakd_latency.json
//	loadgen -duration 2s -assert-speedup 3          # the bench-smoke gate
//	loadgen -url http://127.0.0.1:8080 ...          # aim at a running leakd
//
// With -url empty (the default) an in-process daemon is spawned on a
// loopback port, so the benchmark is self-contained.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math/bits"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"leakpruning/internal/obs"
	"leakpruning/internal/server"
)

func main() {
	var (
		url       = flag.String("url", "", "base URL of a running leakd (empty = spawn one in-process)")
		conns     = flag.Int("conns", 8, "concurrent closed-loop connections")
		warmup    = flag.Duration("warmup", 2*time.Second, "per-phase warmup window (not recorded)")
		duration  = flag.Duration("duration", 8*time.Second, "per-phase measurement window")
		smallIt   = flag.Int("small-iters", 1, "iterations per small request")
		largeIt   = flag.Int("large-iters", 2000, "iterations per large request")
		largeFrac = flag.Float64("large-frac", 0.25, "fraction of requests using the large profile")
		workers   = flag.Int("workers", 0, "concurrent-phase pipeline workers (0 = conns)")
		qdepth    = flag.Int("queue-depth", 0, "concurrent-phase queue depth (0 = 4*workers)")
		heapMB    = flag.Float64("heap", 16, "benchmark tenant heap in MiB")
		seed      = flag.Uint64("seed", 1, "profile-mix RNG seed")
		out       = flag.String("o", "results/BENCH_leakd_latency.json", "report path")
		assertX   = flag.Float64("assert-speedup", 0, "fail unless small-request p99 improves by at least this factor (0 = off)")
		maxP99    = flag.Duration("max-p99", 0, "fail if the concurrent phase's small p99 exceeds this (0 = off)")
	)
	flag.Parse()

	base := *url
	var s *server.Server
	if base == "" {
		cfg := server.Config{
			Budget:         256 << 20,
			RequestTimeout: 60 * time.Second,
			Obs:            obs.New(),
		}
		var err error
		s, err = server.New(cfg)
		if err != nil {
			log.Fatalf("loadgen: %v", err)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatalf("loadgen: listen: %v", err)
		}
		hs := &http.Server{Handler: s.Handler()}
		go func() { _ = hs.Serve(ln) }()
		defer func() { _ = hs.Close(); _, _ = s.Shutdown() }()
		base = "http://" + ln.Addr().String()
		log.Printf("loadgen: spawned in-process leakd on %s", base)
	}

	w := *workers
	if w == 0 {
		w = *conns
	}
	cfg := benchConfig{
		Conns:      *conns,
		WarmupS:    warmup.Seconds(),
		DurationS:  duration.Seconds(),
		Workload:   "queueleak",
		SmallIters: *smallIt,
		LargeIters: *largeIt,
		LargeFrac:  *largeFrac,
		Workers:    w,
		QueueDepth: *qdepth,
		HeapBytes:  uint64(*heapMB * float64(1<<20)),
		Seed:       *seed,
	}

	serial, err := runPhase(base, cfg, false)
	if err != nil {
		log.Fatalf("loadgen: serial phase: %v", err)
	}
	conc, err := runPhase(base, cfg, true)
	if err != nil {
		log.Fatalf("loadgen: concurrent phase: %v", err)
	}

	// The daemon must be exporting the per-request latency series this
	// whole experiment is built on.
	metrics, err := get(base + "/metrics")
	if err != nil {
		log.Fatalf("loadgen: scrape /metrics: %v", err)
	}
	if !strings.Contains(metrics, "lp_request_latency_ns") {
		log.Fatalf("loadgen: /metrics is missing lp_request_latency_ns")
	}

	rep := benchReport{Config: cfg, Phases: map[string]phaseResult{"serial": serial, "concurrent": conc}}
	if sp99 := serial.Profiles["small"].P99Ns; sp99 > 0 && conc.Profiles["small"].P99Ns > 0 {
		rep.SmallP99Speedup = round2(float64(sp99) / float64(conc.Profiles["small"].P99Ns))
	}
	if err := writeReport(*out, rep); err != nil {
		log.Fatalf("loadgen: %v", err)
	}
	log.Printf("loadgen: small p99 %.2fms serial -> %.2fms concurrent (%.2fx); large p99 %.2fms -> %.2fms",
		ms(serial.Profiles["small"].P99Ns), ms(conc.Profiles["small"].P99Ns), rep.SmallP99Speedup,
		ms(serial.Profiles["large"].P99Ns), ms(conc.Profiles["large"].P99Ns))

	if *maxP99 > 0 && conc.Profiles["small"].P99Ns > int64(*maxP99) {
		log.Fatalf("loadgen: FAIL: concurrent small p99 %v exceeds bound %v",
			time.Duration(conc.Profiles["small"].P99Ns), *maxP99)
	}
	if *assertX > 0 && rep.SmallP99Speedup < *assertX {
		log.Fatalf("loadgen: FAIL: small-request p99 speedup %.2fx below the required %.2fx",
			rep.SmallP99Speedup, *assertX)
	}
}

type benchConfig struct {
	Conns      int     `json:"conns"`
	WarmupS    float64 `json:"warmup_s"`
	DurationS  float64 `json:"duration_s"`
	Workload   string  `json:"workload"`
	SmallIters int     `json:"small_iters"`
	LargeIters int     `json:"large_iters"`
	LargeFrac  float64 `json:"large_frac"`
	Workers    int     `json:"workers"`
	QueueDepth int     `json:"queue_depth"`
	HeapBytes  uint64  `json:"heap_bytes"`
	Seed       uint64  `json:"seed"`
}

type profileResult struct {
	Count uint64  `json:"count"`
	MeanNs int64  `json:"mean_ns"`
	P50Ns int64   `json:"p50_ns"`
	P95Ns int64   `json:"p95_ns"`
	P99Ns int64   `json:"p99_ns"`
	MaxNs int64   `json:"max_ns"`
}

type phaseResult struct {
	Pipeline      string                   `json:"pipeline"`
	Requests      uint64                   `json:"requests"`
	Errors        uint64                   `json:"errors"`
	Shed          uint64                   `json:"shed_429"`
	ThroughputRPS float64                  `json:"throughput_rps"`
	Profiles      map[string]profileResult `json:"profiles"`
}

type benchReport struct {
	Config          benchConfig            `json:"config"`
	Phases          map[string]phaseResult `json:"phases"`
	SmallP99Speedup float64                `json:"small_p99_speedup"`
}

// runPhase admits a fresh benchmark tenant (serial or pipelined), runs the
// closed loop against it, and evicts it on the way out so phases cannot
// contaminate each other.
func runPhase(base string, cfg benchConfig, pipelined bool) (phaseResult, error) {
	name, label := "bench-serial", server.PipelineSerial
	tc := server.TenantConfig{Name: name, Workload: cfg.Workload, Policy: "default", HeapLimit: cfg.HeapBytes}
	if pipelined {
		name, label = "bench-conc", server.PipelineConcurrent
		tc.Name = name
		tc.Pipeline = server.PipelineConcurrent
		tc.Workers = cfg.Workers
		tc.QueueDepth = cfg.QueueDepth
	}
	res := phaseResult{Pipeline: label}
	if err := admit(base, tc); err != nil {
		return res, err
	}
	defer evict(base, name)
	log.Printf("loadgen: phase %s: %d conns, warmup %.1fs + measure %.1fs", label, cfg.Conns, cfg.WarmupS, cfg.DurationS)

	type connStats struct {
		small, large *hdrHist
		requests     uint64
		errors       uint64
		shed         uint64
	}
	stats := make([]connStats, cfg.Conns)
	warmupOver := time.Now().Add(time.Duration(cfg.WarmupS * float64(time.Second)))
	stop := warmupOver.Add(time.Duration(cfg.DurationS * float64(time.Second)))

	var wg sync.WaitGroup
	for c := 0; c < cfg.Conns; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			st := &stats[c]
			st.small, st.large = newHDR(), newHDR()
			// One transport per connection, wrk-style: each closed loop owns
			// its TCP connection and issues its next request the moment the
			// previous response lands.
			client := &http.Client{
				Transport: &http.Transport{MaxIdleConnsPerHost: 1},
				Timeout:   90 * time.Second,
			}
			rng := splitmix64(cfg.Seed + uint64(c)*0x9e3779b97f4a7c15)
			for time.Now().Before(stop) {
				iters, hist := cfg.SmallIters, st.small
				if float64(rng.next()>>11)/float64(1<<53) < cfg.LargeFrac {
					iters, hist = cfg.LargeIters, st.large
				}
				t0 := time.Now()
				status, err := post(client, fmt.Sprintf("%s/tenants/%s/run?iters=%d", base, name, iters))
				lat := time.Since(t0)
				if !t0.After(warmupOver) {
					continue
				}
				st.requests++
				switch {
				case err != nil:
					st.errors++
				case status == http.StatusTooManyRequests:
					st.shed++
				case status != http.StatusOK:
					st.errors++
				default:
					hist.record(uint64(lat.Nanoseconds()))
				}
			}
		}(c)
	}
	wg.Wait()

	small, large := newHDR(), newHDR()
	for i := range stats {
		res.Requests += stats[i].requests
		res.Errors += stats[i].errors
		res.Shed += stats[i].shed
		small.merge(stats[i].small)
		large.merge(stats[i].large)
	}
	res.ThroughputRPS = round2(float64(res.Requests) / cfg.DurationS)
	res.Profiles = map[string]profileResult{
		"small": small.summary(),
		"large": large.summary(),
	}
	if small.total == 0 || large.total == 0 {
		return res, fmt.Errorf("phase %s recorded %d small / %d large samples; windows too short for the mix",
			label, small.total, large.total)
	}
	return res, nil
}

// ---------------------------------------------------------------------------
// HDR-style log-linear histogram: 32 sub-buckets per power of two keeps
// relative error ~3% across nanosecond-to-minute latencies in 2 KiB.

const hdrSubBits = 5

type hdrHist struct {
	counts []uint64
	total  uint64
	sum    uint64
	max    uint64
}

func newHDR() *hdrHist { return &hdrHist{counts: make([]uint64, 64<<hdrSubBits)} }

func hdrIndex(v uint64) int {
	const sub = 1 << hdrSubBits
	if v < sub {
		return int(v)
	}
	msb := bits.Len64(v) - 1
	return sub*(msb-hdrSubBits) + int(v>>(uint(msb)-hdrSubBits))
}

// hdrValue returns the midpoint of bucket idx (inverse of hdrIndex).
func hdrValue(idx int) uint64 {
	const sub = 1 << hdrSubBits
	if idx < 2*sub {
		return uint64(idx)
	}
	bucket := idx/sub - 1
	lo := uint64(sub+idx%sub) << uint(bucket)
	return lo + (uint64(1)<<uint(bucket))/2
}

func (h *hdrHist) record(v uint64) {
	h.counts[hdrIndex(v)]++
	h.total++
	h.sum += v
	if v > h.max {
		h.max = v
	}
}

func (h *hdrHist) merge(o *hdrHist) {
	for i, c := range o.counts {
		h.counts[i] += c
	}
	h.total += o.total
	h.sum += o.sum
	if o.max > h.max {
		h.max = o.max
	}
}

func (h *hdrHist) quantile(q float64) int64 {
	if h.total == 0 {
		return 0
	}
	rank := q * float64(h.total)
	cum := 0.0
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		cum += float64(c)
		if cum >= rank {
			v := hdrValue(i)
			if v > h.max {
				v = h.max
			}
			return int64(v)
		}
	}
	return int64(h.max)
}

func (h *hdrHist) summary() profileResult {
	out := profileResult{Count: h.total, MaxNs: int64(h.max)}
	if h.total > 0 {
		out.MeanNs = int64(h.sum / h.total)
		out.P50Ns = h.quantile(0.50)
		out.P95Ns = h.quantile(0.95)
		out.P99Ns = h.quantile(0.99)
	}
	return out
}

// ---------------------------------------------------------------------------

type splitmixState uint64

func splitmix64(seed uint64) *splitmixState { s := splitmixState(seed); return &s }

func (s *splitmixState) next() uint64 {
	*s += 0x9e3779b97f4a7c15
	z := uint64(*s)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func admit(base string, tc server.TenantConfig) error {
	body, err := json.Marshal(tc)
	if err != nil {
		return err
	}
	resp, err := http.Post(base+"/tenants", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		b, _ := io.ReadAll(resp.Body)
		return fmt.Errorf("admit %s: status %d: %s", tc.Name, resp.StatusCode, b)
	}
	return nil
}

func evict(base string, name string) {
	req, _ := http.NewRequest(http.MethodDelete, base+"/tenants/"+name, nil)
	resp, err := http.DefaultClient.Do(req)
	if err == nil {
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
}

func post(client *http.Client, url string) (int, error) {
	resp, err := client.Post(url, "application/json", nil)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, resp.Body)
	return resp.StatusCode, nil
}

func get(url string) (string, error) {
	c := &http.Client{Timeout: 5 * time.Second}
	resp, err := c.Get(url)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return string(b), fmt.Errorf("%s: status %d", url, resp.StatusCode)
	}
	return string(b), nil
}

func writeReport(path string, rep benchReport) error {
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func ms(ns int64) float64 { return float64(ns) / 1e6 }

func round2(f float64) float64 { return float64(int64(f*100+0.5)) / 100 }
