// Command leakreport runs a program under leak pruning and produces the
// diagnostic report the paper sketches in §3.2: the out-of-memory warning,
// the data structures leak pruning reclaimed (edge types, reference counts,
// bytes), the edge-table view with maxStaleUse values, and the final live
// heap composition. Developers use this output to find the leak the pruner
// is papering over.
//
//	leakreport -program eclipsediff
//	leakreport -program mysql -policy default -max-iters 3000
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"
	"time"

	"leakpruning/internal/core"
	"leakpruning/internal/obs"
	"leakpruning/internal/vm"
	"leakpruning/internal/vmerrors"
	"leakpruning/internal/workload"
)

func main() {
	var (
		program  = flag.String("program", "eclipsediff", "workload to diagnose")
		policy   = flag.String("policy", "default", "prediction policy: default, most-stale, indiv-refs, decay")
		maxIters = flag.Int("max-iters", 3000, "iteration cap")
		timeCap  = flag.Duration("time-cap", time.Minute, "wall-clock cap")
		heapMB   = flag.Int("heap", 0, "heap limit in MiB (0 = program default)")
		topN     = flag.Int("top", 12, "rows per report section")
		dotFile  = flag.String("dot", "", "write a Graphviz dump of the final heap to this file")
		dotNodes = flag.Int("dot-nodes", 256, "node cap for the -dot dump")
		obsDir   = flag.String("obs-dir", "results", "directory for trace_*.json and metrics_*.json artifacts (empty = off)")
	)
	flag.Parse()

	prog, err := workload.New(*program)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	pol, err := core.PolicyByName(*policy)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	heapLimit := prog.DefaultHeap()
	if *heapMB > 0 {
		heapLimit = uint64(*heapMB) << 20
	}

	var oomWarnedAt string
	var pruneEvents []core.PruneEvent
	var o *obs.Obs
	if *obsDir != "" {
		o = obs.New()
	}
	machine := vm.New(vm.Options{
		HeapLimit:      heapLimit,
		EnableBarriers: true,
		Policy:         pol,
		Obs:            o,
		OnOOM: func(oom *vmerrors.OutOfMemoryError) {
			oomWarnedAt = oom.Error()
		},
		OnPrune: func(ev core.PruneEvent) { pruneEvents = append(pruneEvents, ev) },
	})

	start := time.Now()
	deadline := start.Add(*timeCap)
	iters := 0
	runErr := machine.RunThread("main", func(t *vm.Thread) {
		t.Scope(func() { prog.Setup(t) })
		for i := 0; i < *maxIters; i++ {
			iters = i + 1
			done := false
			t.Scope(func() { done = prog.Iterate(t, i) })
			if done || time.Now().After(deadline) {
				return
			}
		}
	})

	fmt.Printf("leak report: %s under %s pruning (heap %d KB)\n", prog.Name(), pol.Name(), heapLimit>>10)
	fmt.Printf("%s\n\n", prog.Description())
	fmt.Printf("ran %d iterations in %v; ", iters, time.Since(start).Round(time.Millisecond))
	switch {
	case runErr == nil:
		fmt.Println("still healthy when stopped")
	case vmerrors.IsInternal(runErr):
		fmt.Printf("terminated by a pruned-reference access:\n  %v\n", runErr)
	case vmerrors.IsOOM(runErr):
		fmt.Printf("terminated by memory exhaustion:\n  %v\n", runErr)
	default:
		fmt.Printf("terminated: %v\n", runErr)
	}
	if oomWarnedAt != "" {
		fmt.Printf("\nout-of-memory warning (deferred, §3.2):\n  %s\n", oomWarnedAt)
	}

	st := machine.Stats()
	fmt.Printf("\ncollections: %d full, %d minor; pruned references: %d; poison traps: %d\n",
		st.Collections, st.MinorGCs, st.PrunedRefs, st.PoisonTraps)

	if o != nil {
		tracePath, metricsPath, werr := obs.WriteArtifacts(o, *obsDir, "leakreport_"+prog.Name())
		if werr != nil {
			fmt.Fprintln(os.Stderr, werr)
			os.Exit(1)
		}
		fmt.Printf("\ntrace: %s (load at https://ui.perfetto.dev); metrics: %s\n", tracePath, metricsPath)
	}

	fmt.Printf("\npruned data structures (the likely leaks), first %d events:\n", *topN)
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "  gc\tselection\trefs\tbytes freed")
	for i, ev := range pruneEvents {
		if i >= *topN {
			fmt.Fprintf(w, "  ...\t%d more prune events\t\t\n", len(pruneEvents)-*topN)
			break
		}
		fmt.Fprintf(w, "  %d\t%s\t%d\t%d\n", ev.GCIndex, ev.Selection, ev.PrunedRefs, ev.BytesFreed)
	}
	w.Flush()

	fmt.Printf("\nedge-table view (top %d by pruned references):\n", *topN)
	w = tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "  source class\ttarget class\tmaxStaleUse\tpruned refs")
	shown := 0
	for _, snap := range machine.EdgeTable().Snapshots(machine.Classes()) {
		if snap.TimesPruned == 0 {
			continue
		}
		fmt.Fprintf(w, "  %s\t%s\t%d\t%d\n", snap.Src, snap.Tgt, snap.MaxStaleUse, snap.TimesPruned)
		if shown++; shown >= *topN {
			break
		}
	}
	w.Flush()

	fmt.Printf("\nfinal live heap composition (top %d classes):\n", *topN)
	w = tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "  class\tobjects\tKB")
	for i, row := range machine.HeapHistogram() {
		if i >= *topN {
			break
		}
		fmt.Fprintf(w, "  %s\t%d\t%d\n", row.Class, row.Objects, row.Bytes>>10)
	}
	w.Flush()

	if *dotFile != "" {
		f, err := os.Create(*dotFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := machine.DumpDot(f, *dotNodes); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("\nheap graph written to %s (render with: dot -Tsvg %s)\n", *dotFile, *dotFile)
	}

	if len(pruneEvents) > 0 {
		fmt.Println("\ninterpretation: the classes above that keep appearing as prune")
		fmt.Println("selections are reachable-but-dead growth — start the leak hunt at the")
		fmt.Println("code that creates those source-class objects and never clears their")
		fmt.Println("references.")
	}
}
