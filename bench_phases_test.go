// Phase-level GC benchmarks: mark, sweep, and allocation throughput as a
// function of worker count, isolating each phase of the collector the way
// cmd/phasebench does for the BENCH_gc_phases.json baseline. These are the
// scaling proof for the work-stealing tracer, the parallel sweep-free, and
// the sharded allocator; run them quickly with
//
//	go test -run='^$' -bench='Benchmark(Mark|Sweep|Alloc)Parallel' -benchtime=1x
package leakpruning

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"leakpruning/internal/gc"
	"leakpruning/internal/heap"
)

// phaseWorkerCounts is the worker axis shared by the phase benchmarks.
var phaseWorkerCounts = []int{1, 2, 4, 8}

// BenchmarkMarkParallel measures the mark (in-use closure) phase on the
// ~262k-object tree heap from buildTraceHeap. Everything is reachable, so
// each iteration re-traces the same live graph and sweep frees nothing.
func BenchmarkMarkParallel(b *testing.B) {
	for _, workers := range phaseWorkerCounts {
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			h, roots := buildTraceHeap(b)
			col := gc.NewCollector(h, roots, workers)
			var mark time.Duration
			var objs uint64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res := col.Collect(gc.Plan{Mode: gc.ModeNormal})
				mark += res.MarkDuration
				objs += res.ObjectsLive
			}
			b.StopTimer()
			if objs == 0 {
				b.Fatal("no live objects traced")
			}
			b.ReportMetric(float64(mark.Nanoseconds())/float64(objs), "mark-ns/obj")
		})
	}
}

// buildGarbageHeap fills a heap with unreachable chain objects so a
// collection's work is dominated by the sweep-free phase.
func buildGarbageHeap(b *testing.B, n int) (*heap.Heap, *benchRoots) {
	b.Helper()
	reg := heap.NewRegistry()
	node := reg.Define("Node", 1, 48)
	h := heap.New(reg, 1<<30)
	var prev heap.Ref
	for i := 0; i < n; i++ {
		r, err := h.Allocate(node)
		if err != nil {
			b.Fatal(err)
		}
		if !prev.IsNull() {
			h.Get(r).SetRef(0, prev)
		}
		prev = r
	}
	return h, &benchRoots{}
}

// BenchmarkSweepParallel measures the sweep phase (scan + parallel
// FreeBatch) on a ~131k-object fully-garbage heap, rebuilt outside the
// timer each iteration.
func BenchmarkSweepParallel(b *testing.B) {
	const objects = 1 << 17
	for _, workers := range phaseWorkerCounts {
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			var sweep time.Duration
			var objs uint64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				h, roots := buildGarbageHeap(b, objects)
				col := gc.NewCollector(h, roots, workers)
				b.StartTimer()
				res := col.Collect(gc.Plan{Mode: gc.ModeNormal})
				sweep += res.SweepDuration
				objs += res.ObjectsFreed
			}
			b.StopTimer()
			if objs == 0 {
				b.Fatal("no objects swept")
			}
			b.ReportMetric(float64(sweep.Nanoseconds())/float64(objs), "sweep-ns/obj")
		})
	}
}

// BenchmarkAllocParallel measures mutator allocation throughput: g
// goroutines each allocating through their own TLAB context into a fresh
// heap. One benchmark iteration allocates perIter objects in total.
func BenchmarkAllocParallel(b *testing.B) {
	const perIter = 1 << 17
	reg := heap.NewRegistry()
	node := reg.Define("Node", 1, 48)
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("goroutines-%d", workers), func(b *testing.B) {
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				h := heap.New(reg, 1<<30)
				b.StartTimer()
				var wg sync.WaitGroup
				for g := 0; g < workers; g++ {
					wg.Add(1)
					go func() {
						defer wg.Done()
						ctx := h.NewAllocContext()
						defer h.ReleaseContext(&ctx)
						for j := 0; j < perIter/workers; j++ {
							if _, err := h.AllocateCtx(&ctx, node); err != nil {
								b.Error(err)
								return
							}
						}
					}()
				}
				wg.Wait()
			}
			b.StopTimer()
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*perIter), "alloc-ns/obj")
		})
	}
}
